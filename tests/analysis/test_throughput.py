"""Unit tests for repro.analysis.throughput."""

from fractions import Fraction

import pytest

from repro.analysis.throughput import analyze, max_throughput, throughput
from repro.exceptions import AnalysisError, InconsistentGraphError
from repro.graph.builder import GraphBuilder


class TestThroughput:
    def test_paper_headline_numbers(self, fig1):
        assert throughput(fig1, {"alpha": 4, "beta": 2}, "c") == Fraction(1, 7)
        assert throughput(fig1, {"alpha": 6, "beta": 2}, "c") == Fraction(1, 6)
        assert throughput(fig1, {"alpha": 5, "beta": 2}, "c") == Fraction(1, 7)

    def test_deadlocking_distribution(self, fig1):
        assert throughput(fig1, {"alpha": 3, "beta": 2}, "c") == 0

    def test_default_observe_is_last_actor(self, fig1):
        assert throughput(fig1, {"alpha": 4, "beta": 2}) == Fraction(1, 7)

    def test_throughputs_of_actors_relate_by_repetition_vector(self, fig1):
        caps = {"alpha": 4, "beta": 2}
        assert throughput(fig1, caps, "a") == 3 * throughput(fig1, caps, "c")
        assert throughput(fig1, caps, "b") == 2 * throughput(fig1, caps, "c")

    def test_analyze_exposes_cycle_structure(self, fig1):
        result = analyze(fig1, {"alpha": 4, "beta": 2}, "c")
        assert result.cycle_duration == 7
        assert result.firings_in_cycle == 1
        assert result.first_firing_time == 9
        assert not result.deadlocked

    def test_inconsistent_graph_rejected(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 2)
            .channel("b", "a", 1, 1)
            .build()
        )
        with pytest.raises(InconsistentGraphError):
            throughput(graph, None)


class TestMaxThroughput:
    def test_fig1_both_methods(self, fig1):
        assert max_throughput(fig1, "c") == Fraction(1, 4)
        assert max_throughput(fig1, "c", method="mcm") == Fraction(1, 4)

    def test_methods_agree_on_gallery(self, fig6, samplerate_graph):
        for graph in (fig6, samplerate_graph):
            assert max_throughput(graph) == max_throughput(graph, method="mcm")

    def test_source_actor_rate(self, fig1):
        # a fires 3x per iteration of 4 b-steps -> 3/4.
        assert max_throughput(fig1, "a") == Fraction(3, 4)

    def test_unknown_method_rejected(self, fig1):
        with pytest.raises(AnalysisError, match="unknown"):
            max_throughput(fig1, method="magic")

    def test_cycle_limited_graph(self):
        # A feedback cycle with 1 token serialises a and b: period 5.
        graph = (
            GraphBuilder()
            .actors({"a": 2, "b": 3})
            .channel("a", "b")
            .channel("b", "a", initial_tokens=1)
            .build()
        )
        assert max_throughput(graph, "b") == Fraction(1, 5)
        assert max_throughput(graph, "b", method="mcm") == Fraction(1, 5)

    def test_more_tokens_relax_the_cycle(self):
        graph = (
            GraphBuilder()
            .actors({"a": 2, "b": 3})
            .channel("a", "b")
            .channel("b", "a", initial_tokens=2)
            .build()
        )
        # With two tokens the pipeline is limited only by b itself.
        assert max_throughput(graph, "b") == Fraction(1, 3)
        assert max_throughput(graph, "b", method="mcm") == Fraction(1, 3)
