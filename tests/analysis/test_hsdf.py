"""Unit tests for repro.analysis.hsdf (SDF -> HSDF expansion)."""

import pytest

from repro.analysis.hsdf import to_hsdf
from repro.analysis.repetitions import repetition_vector
from repro.exceptions import AnalysisError
from repro.graph.builder import GraphBuilder


class TestExpansionShape:
    def test_fig1_copy_counts(self, fig1):
        hsdf = to_hsdf(fig1)
        assert hsdf.num_nodes == 3 + 2 + 1
        assert len(hsdf.copies("a")) == 3
        assert len(hsdf.copies("c")) == 1

    def test_node_execution_times(self, fig1):
        hsdf = to_hsdf(fig1)
        assert hsdf.nodes[("b", 0)] == 2
        assert hsdf.nodes[("b", 1)] == 2

    def test_homogeneous_graph_expands_to_itself(self):
        graph = GraphBuilder().actors({"a": 1, "b": 2}).channel("a", "b").build()
        hsdf = to_hsdf(graph, model_auto_concurrency=False)
        assert hsdf.num_nodes == 2
        assert hsdf.edges == {(("a", 0), ("b", 0)): 0}

    def test_auto_concurrency_self_loops(self):
        graph = GraphBuilder().actors({"a": 1, "b": 2}).channel("a", "b").build()
        hsdf = to_hsdf(graph)
        assert hsdf.edges[(("a", 0), ("a", 0))] == 1
        assert hsdf.edges[(("b", 0), ("b", 0))] == 1

    def test_auto_concurrency_cycle_through_copies(self, fig1):
        hsdf = to_hsdf(fig1)
        assert hsdf.edges[(("a", 0), ("a", 1))] == 0
        assert hsdf.edges[(("a", 1), ("a", 2))] == 0
        assert hsdf.edges[(("a", 2), ("a", 0))] == 1

    def test_node_limit(self, samplerate_graph):
        with pytest.raises(AnalysisError, match="limit"):
            to_hsdf(samplerate_graph, node_limit=100)


class TestDependencyEdges:
    def test_multirate_dependencies(self, fig1):
        # b consumes 3 from alpha (p=2): firing b0 needs a's 2nd firing,
        # firing b1 needs a's 3rd firing.
        hsdf = to_hsdf(fig1, model_auto_concurrency=False)
        assert hsdf.edges[(("a", 1), ("b", 0))] == 0
        assert hsdf.edges[(("a", 2), ("b", 1))] == 0
        # c consumes 2 from beta (p=1): needs b's 2nd firing.
        assert hsdf.edges[(("b", 1), ("c", 0))] == 0

    def test_initial_tokens_create_delay(self):
        # One token lets b's first firing use the previous iteration's a.
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 1, initial_tokens=1)
            .build()
        )
        hsdf = to_hsdf(graph, model_auto_concurrency=False)
        assert hsdf.edges == {(("a", 0), ("b", 0)): 1}

    def test_many_tokens_larger_delay(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 1, initial_tokens=3)
            .build()
        )
        hsdf = to_hsdf(graph, model_auto_concurrency=False)
        assert hsdf.edges == {(("a", 0), ("b", 0)): 3}

    def test_duplicate_edges_keep_min_delay(self):
        hsdf = to_hsdf(
            GraphBuilder().actors({"a": 1, "b": 1}).channel("a", "b", 1, 1).build(),
            model_auto_concurrency=False,
        )
        hsdf.add_edge(("a", 0), ("b", 0), 5)
        assert hsdf.edges[(("a", 0), ("b", 0))] == 0
        hsdf.add_edge(("a", 0), ("b", 0), 0)
        assert hsdf.edges[(("a", 0), ("b", 0))] == 0

    def test_hsdf_repetition_vector_is_all_ones(self, fig1):
        """The expansion is homogeneous: rebuilding it as an SDF graph
        gives an all-ones repetition vector."""
        hsdf = to_hsdf(fig1)
        rebuilt = GraphBuilder("rebuilt")
        for (actor, copy), time in hsdf.nodes.items():
            rebuilt.actor(f"{actor}_{copy}", time)
        for index, (((src, si), (dst, di)), delay) in enumerate(hsdf.edges.items()):
            rebuilt.channel(f"{src}_{si}", f"{dst}_{di}", 1, 1, delay, name=f"e{index}")
        graph = rebuilt.build()
        assert set(repetition_vector(graph).values()) == {1}
