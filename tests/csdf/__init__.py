"""Test package."""
