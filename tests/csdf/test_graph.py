"""Unit tests for repro.csdf.graph."""

import pytest

from repro.csdf.graph import CSDFActor, CSDFChannel, CSDFGraph, from_sdf
from repro.exceptions import GraphError, ValidationError


def downsampler():
    graph = CSDFGraph("down")
    graph.add_actor("src", (1,))
    graph.add_actor("ds", (1, 1))
    graph.add_actor("snk", (1,))
    graph.add_channel("src", "ds", (1,), (1, 1), name="a")
    graph.add_channel("ds", "snk", (1, 0), (1,), name="b")
    return graph


class TestActors:
    def test_phases(self):
        actor = CSDFActor("a", (1, 2, 3))
        assert actor.num_phases == 3

    def test_zero_execution_times_allowed(self):
        assert CSDFActor("a", (0, 1)).execution_times == (0, 1)

    def test_empty_phase_list_rejected(self):
        with pytest.raises(GraphError, match="non-empty"):
            CSDFActor("a", ())

    def test_negative_time_rejected(self):
        with pytest.raises(GraphError):
            CSDFActor("a", (1, -1))


class TestChannels:
    def test_totals(self):
        channel = CSDFChannel("c", "a", "b", (1, 0, 2), (3,))
        assert channel.total_production == 3
        assert channel.total_consumption == 3

    def test_all_zero_productions_rejected(self):
        with pytest.raises(GraphError, match="all production"):
            CSDFChannel("c", "a", "b", (0, 0), (1,))

    def test_all_zero_consumptions_rejected(self):
        with pytest.raises(GraphError, match="all consumption"):
            CSDFChannel("c", "a", "b", (1,), (0, 0))

    def test_negative_tokens_rejected(self):
        with pytest.raises(GraphError):
            CSDFChannel("c", "a", "b", (1,), (1,), -1)


class TestGraph:
    def test_build_downsampler(self):
        graph = downsampler()
        assert graph.num_actors == 3
        assert graph.num_channels == 2
        assert graph.actor("ds").num_phases == 2
        assert [c.name for c in graph.outgoing("ds")] == ["b"]
        assert [c.name for c in graph.incoming("ds")] == ["a"]

    def test_phase_count_mismatch_rejected(self):
        graph = CSDFGraph()
        graph.add_actor("a", (1, 1))
        graph.add_actor("b", (1,))
        with pytest.raises(ValidationError, match="production phases"):
            graph.add_channel("a", "b", (1,), (1,))
        with pytest.raises(ValidationError, match="consumption phases"):
            graph.add_channel("a", "b", (1, 1), (1, 1))

    def test_duplicate_names_rejected(self):
        graph = CSDFGraph()
        graph.add_actor("a", (1,))
        with pytest.raises(GraphError, match="duplicate"):
            graph.add_actor("a", (1,))

    def test_unknown_endpoints_rejected(self):
        graph = CSDFGraph()
        graph.add_actor("a", (1,))
        with pytest.raises(GraphError, match="unknown destination"):
            graph.add_channel("a", "b", (1,), (1,))

    def test_describe(self):
        text = downsampler().describe()
        assert "ds t=[1, 1]" in text
        assert "[1, 0]" in text


class TestFromSdf:
    def test_lifting_preserves_structure(self, fig1):
        lifted = from_sdf(fig1)
        assert lifted.actor_names == fig1.actor_names
        assert lifted.channel_names == fig1.channel_names
        assert lifted.actor("b").execution_times == (2,)
        assert lifted.channel("alpha").productions == (2,)
        assert lifted.channel("alpha").consumptions == (3,)
