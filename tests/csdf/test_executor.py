"""Unit tests for the CSDF execution engine."""

import random

from fractions import Fraction

import pytest

from repro.csdf.executor import CSDFExecutor
from repro.csdf.graph import CSDFGraph, from_sdf
from repro.engine.executor import Executor
from repro.exceptions import CapacityError
from repro.gallery.random_graphs import random_consistent_graph


def downsampler():
    graph = CSDFGraph("down")
    graph.add_actor("src", (1,))
    graph.add_actor("ds", (2, 1))
    graph.add_actor("snk", (1,))
    graph.add_channel("src", "ds", (1,), (1, 1), name="a")
    graph.add_channel("ds", "snk", (0, 1), (1,), name="b")
    return graph


class TestCSDFSemantics:
    def test_downsampler_throughput(self):
        # ds alternates a 2-step phase and a 1-step phase; snk gets one
        # token per full cycle (3 steps of ds work, pipelined with src).
        result = CSDFExecutor(downsampler(), {"a": 2, "b": 1}, "snk").run()
        assert result.throughput == Fraction(1, 3)

    def test_zero_rate_phase_skips_channel_conditions(self):
        # Phase 0 of ds produces nothing on b, so a full b never blocks it.
        graph = downsampler()
        result = CSDFExecutor(graph, {"a": 2, "b": 1}, "ds", record_schedule=True).run()
        assert result.throughput > 0
        # ds fires twice per cycle: phases alternate.
        assert result.firings_in_cycle % 2 == 0 or result.throughput == Fraction(2, 3)

    def test_phase_cycle_advances(self):
        graph = downsampler()
        executor = CSDFExecutor(graph, {"a": 2, "b": 1}, "snk")
        executor.run()
        state = executor.state()
        assert len(state.phases) == 3

    def test_deadlock_on_tiny_capacity(self):
        result = CSDFExecutor(downsampler(), {"a": 0, "b": 1}, "snk").run()
        assert result.deadlocked
        assert result.throughput == 0

    def test_blocking_tracked(self):
        result = CSDFExecutor(
            downsampler(), {"a": 1, "b": 1}, "snk", track_blocking=True
        ).run()
        assert result.throughput > 0 or result.space_blocked

    def test_capacity_validation(self):
        with pytest.raises(CapacityError):
            CSDFExecutor(downsampler(), {"zz": 1})

    def test_tick_event_equivalent(self):
        caps = {"a": 2, "b": 1}
        tick = CSDFExecutor(downsampler(), caps, "snk", mode="tick").run()
        event = CSDFExecutor(downsampler(), caps, "snk", mode="event").run()
        assert tick.throughput == event.throughput
        assert tick.first_firing_time == event.first_firing_time

    def test_schedule_recording(self):
        result = CSDFExecutor(
            downsampler(), {"a": 2, "b": 1}, "snk", record_schedule=True
        ).run()
        schedule = result.schedule
        assert schedule.num_firings("ds") >= 2
        durations = {event.duration for event in schedule.firings("ds")}
        assert durations == {1, 2}  # the two phase execution times


class TestSDFEquivalence:
    """Single-phase CSDF must behave exactly like the SDF engine."""

    def test_fig1_equivalence(self, fig1):
        caps = {"alpha": 4, "beta": 2}
        sdf = Executor(fig1, caps, "c").run()
        csdf = CSDFExecutor(from_sdf(fig1), caps, "c").run()
        assert csdf.throughput == sdf.throughput == Fraction(1, 7)
        assert csdf.first_firing_time == sdf.first_firing_time
        assert csdf.cycle_duration == sdf.cycle_duration

    @pytest.mark.parametrize("seed", range(10))
    def test_random_graph_equivalence(self, seed):
        rng = random.Random(seed)
        graph = random_consistent_graph(rng)
        caps = {
            channel.name: max(
                channel.initial_tokens,
                channel.production + channel.consumption + rng.randint(0, 3),
            )
            for channel in graph.channels.values()
        }
        sdf = Executor(graph, caps).run()
        csdf = CSDFExecutor(from_sdf(graph), caps).run()
        assert csdf.throughput == sdf.throughput
        assert csdf.deadlocked == sdf.deadlocked
