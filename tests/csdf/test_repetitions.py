"""Unit tests for repro.csdf.repetitions."""

import pytest

from repro.csdf.graph import CSDFGraph, from_sdf
from repro.csdf.repetitions import (
    csdf_firings_per_iteration,
    csdf_is_consistent,
    csdf_repetition_vector,
)
from repro.exceptions import InconsistentGraphError


def downsampler():
    graph = CSDFGraph("down")
    graph.add_actor("src", (1,))
    graph.add_actor("ds", (1, 1))
    graph.add_actor("snk", (1,))
    graph.add_channel("src", "ds", (1,), (1, 1), name="a")
    graph.add_channel("ds", "snk", (1, 0), (1,), name="b")
    return graph


def test_downsampler_vector():
    q = csdf_repetition_vector(downsampler())
    # One phase cycle of ds consumes 2 and emits 1.
    assert q == {"src": 2, "ds": 1, "snk": 1}


def test_firings_per_iteration():
    firings = csdf_firings_per_iteration(downsampler())
    assert firings == {"src": 2, "ds": 2, "snk": 1}


def test_matches_sdf_on_lifted_graph(fig1):
    from repro.analysis.repetitions import repetition_vector

    assert csdf_repetition_vector(from_sdf(fig1)) == repetition_vector(fig1)


def test_inconsistent_csdf_detected():
    graph = CSDFGraph()
    graph.add_actor("a", (1,))
    graph.add_actor("b", (1, 1))
    graph.add_channel("a", "b", (1,), (1, 1), name="f")
    graph.add_channel("b", "a", (1, 1), (1,), name="r")
    # f: q_a = 2 q_b ; r: 2 q_b = q_a — consistent. Break it:
    graph2 = CSDFGraph()
    graph2.add_actor("a", (1,))
    graph2.add_actor("b", (1, 1))
    graph2.add_channel("a", "b", (1,), (1, 1), name="f")
    graph2.add_channel("b", "a", (1, 0), (1,), name="r")
    assert csdf_is_consistent(graph)
    assert not csdf_is_consistent(graph2)
    with pytest.raises(InconsistentGraphError):
        csdf_repetition_vector(graph2)


def test_balance_equations_hold():
    graph = downsampler()
    q = csdf_repetition_vector(graph)
    for channel in graph.channels.values():
        assert q[channel.source] * channel.total_production == (
            q[channel.destination] * channel.total_consumption
        )
