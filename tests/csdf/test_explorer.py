"""Unit tests for the CSDF design-space exploration."""

import random

from fractions import Fraction

import pytest

from repro.buffers.explorer import explore_design_space
from repro.csdf.executor import CSDFExecutor
from repro.csdf.explorer import (
    csdf_max_throughput,
    csdf_minimal_distribution_for_throughput,
    explore_csdf_design_space,
)
from repro.csdf.graph import CSDFGraph, from_sdf
from repro.exceptions import ExplorationError
from repro.gallery.random_graphs import random_consistent_graph


def downsampler():
    graph = CSDFGraph("down")
    graph.add_actor("src", (1,))
    graph.add_actor("ds", (2, 1))
    graph.add_actor("snk", (1,))
    graph.add_channel("src", "ds", (1,), (1, 1), name="a")
    graph.add_channel("ds", "snk", (0, 1), (1,), name="b")
    return graph


class TestCSDFMaxThroughput:
    def test_downsampler(self):
        # ds needs 3 steps per output token; snk can keep up.
        assert csdf_max_throughput(downsampler(), "snk") == Fraction(1, 3)

    def test_matches_sdf_on_lifted_graphs(self, fig1):
        from repro.analysis.throughput import max_throughput

        assert csdf_max_throughput(from_sdf(fig1), "c") == max_throughput(fig1, "c")


class TestCSDFDesignSpace:
    def test_downsampler_front(self):
        result = explore_csdf_design_space(downsampler(), "snk")
        assert len(result.front) >= 1
        assert result.front.max_throughput_point.throughput == Fraction(1, 3)
        # Witnesses re-execute to their claimed throughput.
        for point in result.front:
            measured = CSDFExecutor(downsampler(), point.distribution, "snk").run().throughput
            assert measured == point.throughput

    def test_front_monotone(self):
        result = explore_csdf_design_space(downsampler(), "snk")
        sizes = result.front.sizes()
        assert sizes == sorted(set(sizes))
        throughputs = result.front.throughputs()
        assert throughputs == sorted(set(throughputs))

    def test_matches_sdf_front_on_lifted_fig1(self, fig1):
        sdf = explore_design_space(fig1, "c")
        csdf = explore_csdf_design_space(from_sdf(fig1), "c")
        assert [(p.size, p.throughput) for p in csdf.front] == [
            (p.size, p.throughput) for p in sdf.front
        ]

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_sdf_front_on_random_graphs(self, seed):
        graph = random_consistent_graph(
            random.Random(seed), max_actors=4, max_repetition=3, max_rate_factor=1
        )
        sdf = explore_design_space(graph)
        csdf = explore_csdf_design_space(from_sdf(graph))
        assert [(p.size, p.throughput) for p in csdf.front] == [
            (p.size, p.throughput) for p in sdf.front
        ]

    def test_max_size_restriction(self):
        full = explore_csdf_design_space(downsampler(), "snk")
        capped_size = full.front.min_positive.size
        capped = explore_csdf_design_space(downsampler(), "snk", max_size=capped_size)
        assert all(point.size <= capped_size for point in capped.front)


class TestCSDFMinimalDistribution:
    def test_constraint_query(self):
        found = csdf_minimal_distribution_for_throughput(downsampler(), Fraction(1, 3), "snk")
        assert found is not None
        distribution, value = found
        assert value >= Fraction(1, 3)
        measured = CSDFExecutor(downsampler(), distribution, "snk").run().throughput
        assert measured == value

    def test_unachievable_returns_none(self):
        assert csdf_minimal_distribution_for_throughput(downsampler(), Fraction(1, 2), "snk") is None

    def test_nonpositive_rejected(self):
        with pytest.raises(ExplorationError):
            csdf_minimal_distribution_for_throughput(downsampler(), Fraction(0), "snk")
