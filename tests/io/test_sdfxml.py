"""Unit tests for repro.io.sdfxml."""

import pytest

from repro.exceptions import ParseError
from repro.gallery import fig1_example, modem
from repro.io.sdfxml import read_xml, read_xml_string, write_xml, write_xml_string


def graphs_equal(first, second):
    assert first.name == second.name
    assert first.actor_names == second.actor_names
    assert first.channel_names == second.channel_names
    for name in first.actor_names:
        assert first.actor(name).execution_time == second.actor(name).execution_time
    for name in first.channel_names:
        a, b = first.channel(name), second.channel(name)
        assert (a.source, a.destination, a.production, a.consumption, a.initial_tokens) == (
            b.source,
            b.destination,
            b.production,
            b.consumption,
            b.initial_tokens,
        )


class TestRoundtrip:
    def test_fig1_roundtrip(self, fig1):
        graphs_equal(fig1, read_xml_string(write_xml_string(fig1)))

    def test_modem_roundtrip_with_tokens(self):
        graph = modem()
        restored = read_xml_string(write_xml_string(graph))
        graphs_equal(graph, restored)
        assert restored.channel("m17").initial_tokens == 1

    def test_file_roundtrip(self, tmp_path, fig1):
        path = tmp_path / "example.xml"
        write_xml(fig1, path)
        graphs_equal(fig1, read_xml(path))

    def test_written_document_shape(self, fig1):
        text = write_xml_string(fig1)
        assert text.startswith("<?xml")
        assert '<sdf3 type="sdf"' in text
        assert '<actor name="a"' in text
        assert '<channel name="alpha"' in text
        assert '<executionTime time="2"' in text

    def test_behaviour_preserved(self, fig1):
        from repro.analysis.throughput import throughput
        from fractions import Fraction

        restored = read_xml_string(write_xml_string(fig1))
        assert throughput(restored, {"alpha": 4, "beta": 2}, "c") == Fraction(1, 7)


class TestParsingErrors:
    def test_malformed_xml(self):
        with pytest.raises(ParseError, match="malformed"):
            read_xml_string("<sdf3><oops")

    def test_wrong_root(self):
        with pytest.raises(ParseError, match="sdf3"):
            read_xml_string("<notsdf/>")

    def test_missing_application_graph(self):
        with pytest.raises(ParseError, match="applicationGraph"):
            read_xml_string('<sdf3 type="sdf"/>')

    def test_missing_sdf_element(self):
        with pytest.raises(ParseError, match="<sdf>"):
            read_xml_string('<sdf3><applicationGraph name="g"/></sdf3>')

    def test_channel_with_unknown_port(self, fig1):
        text = write_xml_string(fig1).replace('srcPort="out0"', 'srcPort="bogus"')
        with pytest.raises(ParseError, match="unknown source port"):
            read_xml_string(text)

    def test_non_integer_rate(self, fig1):
        text = write_xml_string(fig1).replace('rate="2"', 'rate="two"')
        with pytest.raises(ParseError, match="not an integer"):
            read_xml_string(text)

    def test_actor_without_name(self):
        text = (
            '<sdf3 type="sdf"><applicationGraph name="g"><sdf name="g" type="g">'
            "<actor/></sdf></applicationGraph></sdf3>"
        )
        with pytest.raises(ParseError, match="without a name"):
            read_xml_string(text)

    def test_default_execution_time_is_one(self):
        text = (
            '<sdf3 type="sdf"><applicationGraph name="g"><sdf name="g" type="g">'
            '<actor name="a" type="a"/></sdf></applicationGraph></sdf3>'
        )
        graph = read_xml_string(text)
        assert graph.actor("a").execution_time == 1
