"""Unit tests for repro.io.jsonio."""

import json

import pytest

from repro.exceptions import ParseError
from repro.graph.builder import GraphBuilder
from repro.io.jsonio import (
    graph_fingerprint,
    graph_from_dict,
    graph_to_dict,
    read_json,
    write_json,
)


class TestDictRoundtrip:
    def test_fig1(self, fig1):
        restored = graph_from_dict(graph_to_dict(fig1))
        assert restored.name == fig1.name
        assert restored.channel("alpha").consumption == 3
        assert restored.actor("b").execution_time == 2

    def test_dict_shape(self, fig1):
        data = graph_to_dict(fig1)
        assert data["name"] == "example"
        assert data["actors"][0] == {"name": "a", "execution_time": 1}
        assert data["channels"][0]["production"] == 2

    def test_defaults_applied(self):
        graph = graph_from_dict(
            {"actors": [{"name": "a"}, {"name": "b"}], "channels": [{"source": "a", "destination": "b"}]}
        )
        assert graph.name == "sdf"
        assert graph.actor("a").execution_time == 1
        channel = next(iter(graph.channels.values()))
        assert (channel.production, channel.consumption, channel.initial_tokens) == (1, 1, 0)

    def test_missing_keys_raise(self):
        with pytest.raises(ParseError, match="malformed"):
            graph_from_dict({"actors": [{"noname": 1}], "channels": []})
        with pytest.raises(ParseError, match="malformed"):
            graph_from_dict({"channels": []})


class TestFileRoundtrip:
    def test_roundtrip(self, tmp_path, fig1):
        path = tmp_path / "g.json"
        write_json(fig1, path)
        restored = read_json(path)
        assert restored.channel_names == fig1.channel_names

    def test_file_is_valid_json(self, tmp_path, fig1):
        path = tmp_path / "g.json"
        write_json(fig1, path)
        data = json.loads(path.read_text())
        assert data["name"] == "example"

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ParseError, match="malformed JSON"):
            read_json(path)


def _two_actor_graph(name="g", *, exec_a=1, exec_b=2, production=2, consumption=3, tokens=0):
    return (
        GraphBuilder(name)
        .actor("a", exec_a)
        .actor("b", exec_b)
        .channel("a", "b", production, consumption, initial_tokens=tokens, name="alpha")
        .build()
    )


class TestGraphFingerprint:
    def test_stable_hex_digest(self, fig1):
        fingerprint = graph_fingerprint(fig1)
        assert len(fingerprint) == 64
        assert fingerprint == graph_fingerprint(fig1)

    def test_invariant_under_insertion_order(self):
        forward = (
            GraphBuilder("order")
            .actor("a", 1)
            .actor("b", 2)
            .actor("c", 3)
            .channel("a", "b", 2, 3, name="alpha")
            .channel("b", "c", 1, 2, name="beta")
            .build()
        )
        backward = (
            GraphBuilder("order")
            .actor("c", 3)
            .actor("b", 2)
            .actor("a", 1)
            .channel("b", "c", 1, 2, name="beta")
            .channel("a", "b", 2, 3, name="alpha")
            .build()
        )
        assert graph_fingerprint(forward) == graph_fingerprint(backward)

    def test_display_name_is_excluded(self):
        assert graph_fingerprint(_two_actor_graph("one")) == graph_fingerprint(
            _two_actor_graph("two")
        )

    def test_collides_on_no_difference_only(self):
        base = graph_fingerprint(_two_actor_graph())
        assert graph_fingerprint(_two_actor_graph(exec_b=3)) != base
        assert graph_fingerprint(_two_actor_graph(production=3)) != base
        assert graph_fingerprint(_two_actor_graph(consumption=4)) != base
        assert graph_fingerprint(_two_actor_graph(tokens=1)) != base

    def test_survives_json_roundtrip(self, fig1):
        assert graph_fingerprint(graph_from_dict(graph_to_dict(fig1))) == graph_fingerprint(fig1)
