"""Unit tests for repro.io.jsonio."""

import json

import pytest

from repro.exceptions import ParseError
from repro.io.jsonio import graph_from_dict, graph_to_dict, read_json, write_json


class TestDictRoundtrip:
    def test_fig1(self, fig1):
        restored = graph_from_dict(graph_to_dict(fig1))
        assert restored.name == fig1.name
        assert restored.channel("alpha").consumption == 3
        assert restored.actor("b").execution_time == 2

    def test_dict_shape(self, fig1):
        data = graph_to_dict(fig1)
        assert data["name"] == "example"
        assert data["actors"][0] == {"name": "a", "execution_time": 1}
        assert data["channels"][0]["production"] == 2

    def test_defaults_applied(self):
        graph = graph_from_dict(
            {"actors": [{"name": "a"}, {"name": "b"}], "channels": [{"source": "a", "destination": "b"}]}
        )
        assert graph.name == "sdf"
        assert graph.actor("a").execution_time == 1
        channel = next(iter(graph.channels.values()))
        assert (channel.production, channel.consumption, channel.initial_tokens) == (1, 1, 0)

    def test_missing_keys_raise(self):
        with pytest.raises(ParseError, match="malformed"):
            graph_from_dict({"actors": [{"noname": 1}], "channels": []})
        with pytest.raises(ParseError, match="malformed"):
            graph_from_dict({"channels": []})


class TestFileRoundtrip:
    def test_roundtrip(self, tmp_path, fig1):
        path = tmp_path / "g.json"
        write_json(fig1, path)
        restored = read_json(path)
        assert restored.channel_names == fig1.channel_names

    def test_file_is_valid_json(self, tmp_path, fig1):
        path = tmp_path / "g.json"
        write_json(fig1, path)
        data = json.loads(path.read_text())
        assert data["name"] == "example"

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ParseError, match="malformed JSON"):
            read_json(path)
