"""Unit tests for repro.io.csdfjson."""

import pytest

from repro.csdf.graph import CSDFGraph, from_sdf
from repro.exceptions import ParseError
from repro.io.csdfjson import csdf_from_dict, csdf_to_dict, read_csdf_json, write_csdf_json


def decimator():
    graph = CSDFGraph("decimator")
    graph.add_actor("src", (1,))
    graph.add_actor("decim", (2, 1))
    graph.add_channel("src", "decim", (1,), (1, 1), 1, name="a")
    return graph


class TestRoundtrip:
    def test_dict_roundtrip(self):
        graph = decimator()
        restored = csdf_from_dict(csdf_to_dict(graph))
        assert restored.name == "decimator"
        assert restored.actor("decim").execution_times == (2, 1)
        assert restored.channel("a").consumptions == (1, 1)
        assert restored.channel("a").initial_tokens == 1

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "g.json"
        write_csdf_json(decimator(), path)
        restored = read_csdf_json(path)
        assert restored.channel_names == ["a"]
        assert csdf_to_dict(restored) == csdf_to_dict(decimator())

    def test_model_marker_written(self):
        assert csdf_to_dict(decimator())["model"] == "csdf"

    def test_lifted_sdf_roundtrip(self, fig1):
        lifted = from_sdf(fig1)
        restored = csdf_from_dict(csdf_to_dict(lifted))
        assert restored.channel("alpha").productions == (2,)


class TestLenientParsing:
    def test_scalar_rates_accepted(self):
        graph = csdf_from_dict(
            {
                "actors": [
                    {"name": "a", "execution_time": 2},
                    {"name": "b", "execution_times": [1, 3]},
                ],
                "channels": [
                    {"source": "a", "destination": "b", "production": 2, "consumptions": [1, 1]}
                ],
            }
        )
        assert graph.actor("a").execution_times == (2,)
        assert graph.channel("ch0").productions == (2,)

    def test_malformed_rejected(self):
        with pytest.raises(ParseError, match="malformed"):
            csdf_from_dict({"actors": [{"name": "a"}], "channels": [{"source": "a"}]})

    def test_malformed_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(ParseError, match="malformed JSON"):
            read_csdf_json(path)

    def test_behaviour_preserved(self):
        from repro.csdf.executor import CSDFExecutor

        graph = decimator()
        restored = csdf_from_dict(csdf_to_dict(graph))
        original = CSDFExecutor(graph, {"a": 2}, "decim").run().throughput
        reloaded = CSDFExecutor(restored, {"a": 2}, "decim").run().throughput
        assert original == reloaded
