"""Unit tests for repro.io.frontjson."""

import json
from fractions import Fraction

import pytest

from repro.buffers.explorer import RESULT_SCHEMA_VERSION, explore_design_space
from repro.exceptions import ParseError, ReproError
from repro.io.frontjson import (
    front_to_dict,
    parse_throughput,
    read_result_json,
    result_from_dict,
    result_to_dict,
    write_result_json,
)


def test_front_serialisation(fig1):
    result = explore_design_space(fig1, "c")
    data = front_to_dict(result.front)
    assert [entry["size"] for entry in data] == [6, 8, 9, 10]
    assert data[0]["throughput"] == "1/7"
    assert abs(data[0]["throughput_float"] - 1 / 7) < 1e-12
    assert {"alpha": 4, "beta": 2} in data[0]["witnesses"]


def test_result_serialisation(fig1):
    result = explore_design_space(fig1, "c")
    data = result_to_dict(result)
    assert data["graph"] == "example"
    assert data["observe"] == "c"
    assert data["max_throughput"] == "1/4"
    assert data["lower_bounds"] == {"alpha": 4, "beta": 2}
    assert data["stats"]["strategy"] == "dependency"
    assert data["stats"]["evaluations"] >= 4


def test_file_export_is_valid_json(tmp_path, fig1):
    result = explore_design_space(fig1, "c")
    path = tmp_path / "front.json"
    write_result_json(result, path)
    data = json.loads(path.read_text())
    assert len(data["pareto_front"]) == 4


def test_throughput_roundtrip(fig1):
    result = explore_design_space(fig1, "c")
    for entry in front_to_dict(result.front):
        value = parse_throughput(entry["throughput"])
        assert isinstance(value, Fraction)
    assert parse_throughput("1/7") == Fraction(1, 7)


class TestSchemaVersion:
    def test_payload_carries_schema_field(self, fig1):
        data = result_to_dict(explore_design_space(fig1, "c"))
        assert data["schema"] == RESULT_SCHEMA_VERSION == 1

    def test_roundtrip_keeps_schema(self, tmp_path, fig1):
        result = explore_design_space(fig1, "c")
        path = tmp_path / "front.json"
        write_result_json(result, path)
        restored = read_result_json(path)
        assert restored.front == result.front
        assert restored.to_dict() == result.to_dict()

    def test_unknown_version_rejected_with_repro_error(self, fig1):
        data = result_to_dict(explore_design_space(fig1, "c"))
        data["schema"] = 99
        with pytest.raises(ReproError, match="schema version 99"):
            result_from_dict(data)

    def test_missing_schema_read_as_version_1(self, fig1):
        data = result_to_dict(explore_design_space(fig1, "c"))
        del data["schema"]  # documents written before the field existed
        assert result_from_dict(data).front == explore_design_space(fig1, "c").front


class TestReaderErrorPaths:
    def test_truncated_file(self, tmp_path, fig1):
        path = tmp_path / "cut.json"
        write_result_json(explore_design_space(fig1, "c"), path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ParseError, match="not valid result JSON"):
            read_result_json(path)

    def test_wrong_schema_version_from_file(self, tmp_path, fig1):
        data = result_to_dict(explore_design_space(fig1, "c"))
        data["schema"] = 2
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ParseError, match="schema version 2"):
            read_result_json(path)

    def test_non_integer_capacities(self, tmp_path, fig1):
        data = result_to_dict(explore_design_space(fig1, "c"))
        data["lower_bounds"]["alpha"] = "lots"
        path = tmp_path / "caps.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ParseError, match="malformed exploration result"):
            read_result_json(path)

    def test_missing_section(self, fig1):
        data = result_to_dict(explore_design_space(fig1, "c"))
        del data["pareto_front"]
        with pytest.raises(ParseError, match="malformed exploration result"):
            result_from_dict(data)

    def test_non_object_payload(self):
        with pytest.raises(ParseError, match="JSON object"):
            result_from_dict(["not", "a", "result"])

    def test_happy_path_unaffected(self, tmp_path, fig1):
        result = explore_design_space(fig1, "c")
        path = tmp_path / "ok.json"
        write_result_json(result, path)
        assert read_result_json(path).max_throughput == result.max_throughput
