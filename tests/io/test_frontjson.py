"""Unit tests for repro.io.frontjson."""

import json
from fractions import Fraction

from repro.buffers.explorer import explore_design_space
from repro.io.frontjson import front_to_dict, parse_throughput, result_to_dict, write_result_json


def test_front_serialisation(fig1):
    result = explore_design_space(fig1, "c")
    data = front_to_dict(result.front)
    assert [entry["size"] for entry in data] == [6, 8, 9, 10]
    assert data[0]["throughput"] == "1/7"
    assert abs(data[0]["throughput_float"] - 1 / 7) < 1e-12
    assert {"alpha": 4, "beta": 2} in data[0]["witnesses"]


def test_result_serialisation(fig1):
    result = explore_design_space(fig1, "c")
    data = result_to_dict(result)
    assert data["graph"] == "example"
    assert data["observe"] == "c"
    assert data["max_throughput"] == "1/4"
    assert data["lower_bounds"] == {"alpha": 4, "beta": 2}
    assert data["stats"]["strategy"] == "dependency"
    assert data["stats"]["evaluations"] >= 4


def test_file_export_is_valid_json(tmp_path, fig1):
    result = explore_design_space(fig1, "c")
    path = tmp_path / "front.json"
    write_result_json(result, path)
    data = json.loads(path.read_text())
    assert len(data["pareto_front"]) == 4


def test_throughput_roundtrip(fig1):
    result = explore_design_space(fig1, "c")
    for entry in front_to_dict(result.front):
        value = parse_throughput(entry["throughput"])
        assert isinstance(value, Fraction)
    assert parse_throughput("1/7") == Fraction(1, 7)
