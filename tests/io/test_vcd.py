"""Unit tests for repro.io.vcd."""

import re

from repro.engine.executor import Executor
from repro.io.vcd import _identifier, schedule_to_vcd, states_to_vcd


def fig1_schedule(fig1):
    return Executor(fig1, {"alpha": 4, "beta": 2}, "c", record_schedule=True).run().schedule


class TestIdentifiers:
    def test_unique_and_printable(self):
        codes = [_identifier(index) for index in range(500)]
        assert len(set(codes)) == 500
        assert all(code.isprintable() and " " not in code for code in codes)

    def test_short_for_small_indices(self):
        assert len(_identifier(0)) == 1
        assert _identifier(0) != _identifier(1)


class TestScheduleVcd:
    def test_header_and_signals(self, fig1):
        vcd = schedule_to_vcd(fig1_schedule(fig1))
        assert "$timescale 1 ns $end" in vcd
        assert "$scope module example $end" in vcd
        for actor in ("a", "b", "c"):
            assert f"busy_{actor}" in vcd
        assert "$enddefinitions $end" in vcd

    def test_initial_values_zero(self, fig1):
        vcd = schedule_to_vcd(fig1_schedule(fig1))
        after_zero = vcd.split("#0\n", 1)[1]
        first_lines = after_zero.split("\n")[:3]
        assert all(line.startswith("0") for line in first_lines)

    def test_transitions_match_firings(self, fig1):
        schedule = fig1_schedule(fig1)
        vcd = schedule_to_vcd(schedule)
        rises = len(re.findall(r"^1", vcd, flags=re.MULTILINE))
        assert rises == len(schedule.events)

    def test_timestamps_monotone(self, fig1):
        vcd = schedule_to_vcd(fig1_schedule(fig1))
        stamps = [int(line[1:]) for line in vcd.splitlines() if line.startswith("#")]
        assert stamps == sorted(stamps)

    def test_horizon_truncation(self, fig1):
        vcd = schedule_to_vcd(fig1_schedule(fig1), until=5)
        stamps = [int(line[1:]) for line in vcd.splitlines() if line.startswith("#")]
        assert max(stamps) <= 5


class TestStatesVcd:
    def test_token_signals(self, fig1):
        states, _ = Executor(fig1, {"alpha": 4, "beta": 2}, "c").explore_full_state_space()
        vcd = states_to_vcd(fig1, states)
        assert "tokens_alpha" in vcd
        assert "tokens_beta" in vcd
        # Binary values appear.
        assert re.search(r"^b[01]+ ", vcd, flags=re.MULTILINE)

    def test_only_changes_emitted(self, fig1):
        states, _ = Executor(fig1, {"alpha": 4, "beta": 2}, "c").explore_full_state_space()
        vcd = states_to_vcd(fig1, states)
        values = re.findall(r"^b([01]+) (\S+)$", vcd, flags=re.MULTILINE)
        last = {}
        for bits, code in values:
            assert last.get(code) != bits
            last[code] = bits
