"""Unit tests for repro.io.dot."""

from repro.gallery import modem
from repro.io.dot import to_dot


def test_contains_actors_and_channels(fig1):
    dot = to_dot(fig1)
    assert dot.startswith('digraph "example"')
    assert '"a" [label="a\\nt=1"]' in dot
    assert '"a" -> "b"' in dot
    assert 'taillabel="2"' in dot
    assert 'headlabel="3"' in dot


def test_initial_tokens_annotated():
    dot = to_dot(modem())
    assert "m17 (1•)" in dot


def test_rankdir_configurable(fig1):
    assert "rankdir=TB" in to_dot(fig1, rankdir="TB")


def test_output_is_balanced(fig1):
    dot = to_dot(fig1)
    assert dot.count("{") == dot.count("}")
    assert dot.endswith("}\n")
