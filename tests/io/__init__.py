"""Test package."""
