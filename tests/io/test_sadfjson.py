"""Unit tests for the versioned sadfjson format."""

import json

import pytest

from repro.exceptions import ParseError
from repro.gallery import h263_frames, modem_modes
from repro.io.sadfjson import (
    SADF_SCHEMA_VERSION,
    is_sadf_document,
    read_sadf_json,
    sadf_fingerprint,
    sadf_from_dict,
    sadf_to_dict,
    write_sadf_json,
)


def structure(sadf):
    fsm = sadf.fsm
    return (
        sadf.name,
        sadf.actor_names,
        [
            (c.name, c.source, c.destination, c.initial_tokens)
            for c in sadf.channels.values()
        ],
        {
            s.name: (
                dict(s.execution_times),
                dict(s.productions),
                dict(s.consumptions),
            )
            for s in sadf.scenarios.values()
        },
        None
        if fsm is None
        else (fsm.initial, [(t.source, t.target, t.delay) for t in fsm.transitions]),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [modem_modes, h263_frames])
    def test_dict_roundtrip(self, factory):
        sadf = factory()
        again = sadf_from_dict(sadf_to_dict(sadf))
        assert structure(again) == structure(sadf)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "modes.json"
        write_sadf_json(modem_modes(), path)
        assert structure(read_sadf_json(path)) == structure(modem_modes())

    def test_document_shape(self):
        document = sadf_to_dict(h263_frames())
        assert document["schema"] == SADF_SCHEMA_VERSION
        assert document["model"] == "sadf"
        assert document["fsm"]["initial"] == "i"
        assert is_sadf_document(document)

    def test_fingerprint_stable_and_name_independent(self):
        a = sadf_to_dict(modem_modes())
        b = sadf_to_dict(modem_modes())
        b["name"] = "renamed"
        assert sadf_fingerprint(sadf_from_dict(a)) == sadf_fingerprint(
            sadf_from_dict(b)
        )
        assert sadf_fingerprint(modem_modes()) != sadf_fingerprint(h263_frames())

    def test_fingerprint_sees_delays(self):
        a = h263_frames()
        b = sadf_to_dict(h263_frames())
        b["fsm"]["transitions"][0]["delay"] += 1
        assert sadf_fingerprint(a) != sadf_fingerprint(sadf_from_dict(b))


class TestRejections:
    def test_unknown_schema_version(self):
        document = sadf_to_dict(h263_frames())
        document["schema"] = 99
        with pytest.raises(ParseError, match="schema version"):
            sadf_from_dict(document)

    def test_missing_schema(self):
        with pytest.raises(ParseError, match="schema version"):
            sadf_from_dict({"model": "sadf"})

    def test_unknown_model(self):
        document = sadf_to_dict(h263_frames())
        document["model"] = "csdf"
        with pytest.raises(ParseError, match="not an SADF document"):
            sadf_from_dict(document)

    def test_fsm_unknown_scenario_ref(self):
        document = sadf_to_dict(h263_frames())
        document["fsm"]["transitions"].append(
            {"source": "i", "target": "ghost", "delay": 0}
        )
        with pytest.raises(ParseError, match="unknown scenario"):
            sadf_from_dict(document)

    def test_scenario_references_unknown_channel(self):
        document = sadf_to_dict(h263_frames())
        document["scenarios"]["i"]["productions"]["ghost"] = 2
        with pytest.raises(ParseError, match="unknown channel"):
            sadf_from_dict(document)

    def test_missing_sections_are_parse_errors(self):
        with pytest.raises(ParseError, match="malformed"):
            sadf_from_dict({"schema": 1, "model": "sadf", "name": "x"})

    def test_scenarios_must_be_mapping(self):
        document = sadf_to_dict(h263_frames())
        document["scenarios"] = ["i", "p"]
        with pytest.raises(ParseError):
            sadf_from_dict(document)

    def test_non_mapping_document(self):
        with pytest.raises(ParseError, match="JSON object"):
            sadf_from_dict([1, 2, 3])

    def test_broken_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ParseError, match="malformed JSON"):
            read_sadf_json(path)

    def test_is_sadf_document_on_plain_sdf(self, fig1):
        from repro.io.jsonio import graph_to_dict

        assert not is_sadf_document(graph_to_dict(fig1))
        assert not is_sadf_document("sadf")
        assert not is_sadf_document(None)
