"""Overload behaviour of the job manager and the HTTP service: breaker
trips and recovery, bulkhead isolation under a batch flood, queue caps,
idempotent replay.  Chaos injection (``params.chaos``) stands in for
wedged/killed workers — it raises from inside the worker plane exactly
like a crashed execution would."""

import time

import pytest

from repro.exceptions import RateLimited, ServiceError, ServiceUnavailable
from repro.io.jsonio import graph_to_dict
from repro.service.client import ServiceClient
from repro.service.jobs import JobManager, JobSpec
from repro.service.registry import GraphRegistry
from repro.service.resilience import JOB_CLASSES, Bulkhead, CircuitBreaker
from repro.service.server import AnalysisServer


def wait_for(predicate, timeout=20.0, step=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(step)
    raise AssertionError("condition not reached within timeout")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_manager(fig1, *, clock=None, breaker_kwargs=None, **kwargs):
    registry = GraphRegistry()
    fingerprint, _ = registry.add(fig1)
    if breaker_kwargs is not None:
        kwargs["breakers"] = {
            cls: CircuitBreaker(cls, clock=clock or time.monotonic, **breaker_kwargs)
            for cls in JOB_CLASSES
        }
    manager = JobManager(registry, allow_chaos=True, **kwargs)
    return manager, fingerprint


def spec(fingerprint, kind="throughput", **params):
    defaults = {"capacities": {"alpha": 4, "beta": 2}} if kind == "throughput" else {}
    defaults.update(params)
    return JobSpec(kind=kind, fingerprint=fingerprint, observe="c", params=defaults)


class TestBreakerOnTheManager:
    def test_chaos_failures_open_the_breaker_and_shed_load(self, fig1):
        clock = FakeClock()
        manager, fingerprint = make_manager(
            fig1, clock=clock, breaker_kwargs=dict(min_calls=2, cooldown_s=5.0)
        )
        try:
            jobs = [
                manager.submit(spec(fingerprint, chaos="fail")) for _ in range(2)
            ]
            wait_for(lambda: all(job.state == "failed" for job in jobs))
            assert all("chaos" in job.error for job in jobs)
            assert manager.breakers["interactive"].state == "open"

            with pytest.raises(ServiceUnavailable) as caught:
                manager.submit(spec(fingerprint))
            assert caught.value.status == 503
            assert caught.value.code == "breaker_open"
            assert caught.value.retry_after_s == pytest.approx(5.0)
            # the batch class is isolated: its breaker never saw a failure
            batch_job = manager.submit(spec(fingerprint, kind="dse"))
            wait_for(lambda: batch_job.state == "done")
        finally:
            manager.drain()

    def test_half_open_recovery_closes_after_a_success(self, fig1):
        clock = FakeClock()
        manager, fingerprint = make_manager(
            fig1, clock=clock, breaker_kwargs=dict(min_calls=2, cooldown_s=5.0)
        )
        try:
            jobs = [
                manager.submit(spec(fingerprint, chaos="fail")) for _ in range(2)
            ]
            wait_for(lambda: all(job.state == "failed" for job in jobs))
            assert manager.breakers["interactive"].state == "open"
            clock.advance(5.0)  # cooldown elapses -> half-open trials
            trial = manager.submit(spec(fingerprint))
            wait_for(lambda: trial.state == "done")
            assert manager.breakers["interactive"].state == "closed"
            assert manager.breakers["interactive"].counters["closed"] == 1
        finally:
            manager.drain()

    def test_client_errors_do_not_trip_the_breaker(self, fig1):
        manager, fingerprint = make_manager(
            fig1, breaker_kwargs=dict(min_calls=2, cooldown_s=5.0)
        )
        try:
            # unknown backend: a ReproError (client mistake), not an
            # internal failure — the worker plane is healthy.
            jobs = [
                manager.submit(spec(fingerprint, backend="warp")) for _ in range(4)
            ]
            wait_for(lambda: all(job.state == "failed" for job in jobs))
            assert manager.breakers["interactive"].state == "closed"
        finally:
            manager.drain()

    def test_cancelled_queued_job_releases_its_breaker_slot(self, fig1):
        clock = FakeClock()
        manager, fingerprint = make_manager(
            fig1,
            clock=clock,
            breaker_kwargs=dict(min_calls=2, cooldown_s=5.0, half_open_max=1),
        )
        try:
            jobs = [
                manager.submit(spec(fingerprint, chaos="fail")) for _ in range(2)
            ]
            wait_for(lambda: all(job.state == "failed" for job in jobs))
            clock.advance(5.0)
            # occupy the worker so the half-open trial stays queued
            blocker = manager.submit(spec(fingerprint, kind="dse", chaos="sleep:2"))
            trial = manager.submit(spec(fingerprint))
            assert manager.breakers["interactive"].state == "half-open"
            with pytest.raises(ServiceUnavailable):
                manager.submit(spec(fingerprint))  # the only trial slot is taken
            manager.cancel(trial.id)  # releases the slot
            retry = manager.submit(spec(fingerprint))
            wait_for(lambda: retry.state == "done")
            if blocker.state not in ("done", "failed", "cancelled"):
                manager.cancel(blocker.id)
        finally:
            manager.drain()


class TestBulkheadOnTheManager:
    def test_queue_cap_answers_429(self, fig1):
        manager, fingerprint = make_manager(
            fig1,
            workers=1,
            bulkhead=Bulkhead(1, queue_caps={"batch": 1}),
        )
        try:
            # wedge the single worker, then fill the one batch queue slot
            running = manager.submit(spec(fingerprint, kind="dse", chaos="sleep:5"))
            wait_for(lambda: running.state == "running")
            manager.submit(spec(fingerprint, kind="dse"))
            with pytest.raises(RateLimited) as caught:
                manager.submit(spec(fingerprint, kind="dse"))
            assert caught.value.status == 429
            # the interactive class is not capped
            interactive = manager.submit(spec(fingerprint))
            assert interactive.state == "queued"
            manager.cancel(running.id)
        finally:
            manager.drain()

    def test_batch_flood_does_not_starve_interactive(self, fig1):
        manager, fingerprint = make_manager(
            fig1,
            workers=2,
            bulkhead=Bulkhead(2, reserved={"interactive": 1}),
        )
        try:
            # flood: long batch jobs, more than the floating worker can take
            flood = [
                manager.submit(spec(fingerprint, kind="dse", chaos="sleep:4"))
                for _ in range(4)
            ]
            wait_for(lambda: any(job.state == "running" for job in flood))
            started = time.monotonic()
            point = manager.submit(spec(fingerprint))
            wait_for(lambda: point.state == "done", timeout=3.0)
            # served by the reserved worker long before any sleeper ends
            assert time.monotonic() - started < 3.0
            assert point.result["throughput"] == "1/7"
            for job in flood:
                if job.state not in ("done", "failed", "cancelled"):
                    manager.cancel(job.id)
        finally:
            manager.drain()


class TestIdempotency:
    def test_replay_returns_the_original_job(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            first = manager.submit(spec(fingerprint), idempotency_key="abc")
            again = manager.submit(spec(fingerprint), idempotency_key="abc")
            assert again is first
            other = manager.submit(spec(fingerprint), idempotency_key="xyz")
            assert other is not first
            assert manager.telemetry.counters.get("job_replayed", 0) == 1
        finally:
            manager.drain()

    def test_replay_survives_restart(self, fig1, tmp_path):
        registry = GraphRegistry(tmp_path)
        fingerprint, _ = registry.add(fig1)
        manager = JobManager(registry, tmp_path)
        job = manager.submit(spec(fingerprint), idempotency_key="abc")
        wait_for(lambda: job.state == "done")
        manager.drain()

        reborn = JobManager(GraphRegistry(tmp_path), tmp_path)
        try:
            replay = reborn.submit(spec(fingerprint), idempotency_key="abc")
            assert replay.id == job.id
        finally:
            reborn.drain()


class TestOverloadEndToEnd:
    """Acceptance: worker kills plus a batch flood, while interactive
    requests keep succeeding over HTTP."""

    def test_interactive_survives_worker_kills_and_batch_flood(self, fig1):
        breakers = {
            # batch trips under the kills even though the flood's sleeps
            # succeed (3 failures / 7 outcomes); interactive stays healthy
            cls: CircuitBreaker(
                cls, min_calls=3, failure_threshold=0.4, cooldown_s=30.0
            )
            for cls in JOB_CLASSES
        }
        with AnalysisServer(
            workers=2,
            bulkhead=Bulkhead(2, reserved={"interactive": 1}, queue_caps={"batch": 16}),
            breakers=breakers,
            allow_chaos=True,
        ) as server:
            client = ServiceClient(server.url)
            graph = graph_to_dict(fig1)
            fingerprint = client.submit_graph(graph)

            # batch flood: long jobs hogging the floating worker
            flood = [
                client.submit_job(
                    fingerprint, kind="dse", observe="c", params={"chaos": "sleep:1"}
                )
                for _ in range(4)
            ]
            # worker kills queued behind the flood: each chaos failure
            # hits the batch breaker the way a crashed worker would
            kills = [
                client.submit_job(
                    fingerprint, kind="dse", observe="c", params={"chaos": "fail"}
                )
                for _ in range(3)
            ]

            # interactive point queries keep succeeding throughout
            for _ in range(5):
                result = client.result(
                    client.submit_job(
                        fingerprint,
                        kind="throughput",
                        observe="c",
                        params={"capacities": {"alpha": 4, "beta": 2}},
                    )["id"],
                    timeout=10.0,
                )
                assert result["throughput"] == "1/7"

            for job in kills:
                assert client.wait(job["id"], timeout=30.0)["state"] == "failed"
            health = client.healthz()
            states = {b["name"]: b["state"] for b in health["breakers"]}
            assert states["batch"] == "open"  # the kills tripped it
            assert states["interactive"] == "closed"

            # an open batch breaker sheds batch load with Retry-After...
            with pytest.raises(ServiceUnavailable) as caught:
                client.submit_job(
                    fingerprint, kind="dse", observe="c", idempotency_key=""
                )
            assert caught.value.code == "breaker_open"
            # ...while interactive still flows
            probe = client.submit_job(
                fingerprint,
                kind="throughput",
                observe="c",
                params={"capacities": {"alpha": 4, "beta": 2}},
            )
            assert client.wait(probe["id"], timeout=10.0)["state"] == "done"

            for job in flood:
                state = client.job(job["id"])["state"]
                if state not in ("done", "failed", "cancelled"):
                    client.cancel(job["id"])

    def test_http_idempotent_replay_is_200_with_the_original_id(self, fig1):
        with AnalysisServer(workers=1) as server:
            client = ServiceClient(server.url)
            graph = graph_to_dict(fig1)
            first = client.submit_job(
                graph, kind="dse", observe="c", idempotency_key="replay-me"
            )
            again = client.submit_job(
                graph, kind="dse", observe="c", idempotency_key="replay-me"
            )
            assert again["id"] == first["id"]

    def test_queue_full_is_still_503_with_queue_full_code(self, fig1):
        manager, fingerprint = make_manager(fig1, workers=1, queue_size=1)
        try:
            running = manager.submit(spec(fingerprint, kind="dse", chaos="sleep:5"))
            wait_for(lambda: running.state == "running")
            manager.submit(spec(fingerprint, kind="dse"))
            with pytest.raises(ServiceError) as caught:
                manager.submit(spec(fingerprint, kind="dse"))
            assert caught.value.status == 503
            assert caught.value.code == "queue_full"
            assert "queue is full" in str(caught.value)
            manager.cancel(running.id)
        finally:
            manager.drain()

    def test_chaos_requires_opt_in(self, fig1):
        registry = GraphRegistry()
        fingerprint, _ = registry.add(fig1)
        manager = JobManager(registry)  # allow_chaos defaults off
        try:
            job = manager.submit(spec(fingerprint, chaos="fail"))
            wait_for(lambda: job.state == "done")  # directive ignored
        finally:
            manager.drain()
