"""Client-side resilience: retry/backoff against a scripted stub server.

The stub answers each request from a per-(method, path) script of
status codes, so tests can stage 503-then-200 sequences and count the
attempts that actually hit the wire."""

import json
import threading
import urllib.error
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.exceptions import (
    JobFailed,
    JobPartial,
    RateLimited,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.client import ServiceClient
from repro.service.resilience import RetryPolicy


class StubServer:
    """Minimal scripted HTTP server: per-route status sequences."""

    def __init__(self):
        self.scripts: dict[tuple[str, str], list[int]] = {}
        self.payloads: dict[tuple[str, str], dict] = {}
        self.requests: list[tuple[str, str]] = []
        stub = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, format, *args):  # noqa: A002
                pass

            def _serve(self, method: str) -> None:
                length = int(self.headers.get("Content-Length") or 0)
                if length:
                    self.rfile.read(length)
                key = (method, self.path)
                stub.requests.append(key)
                script = stub.scripts.get(key)
                status = script.pop(0) if script else 200
                payload = stub.payloads.get(key, {"ok": True})
                if status >= 400:
                    payload = {
                        "error": {
                            "code": "unavailable" if status == 503 else "error",
                            "message": f"scripted {status}",
                            "trace_id": "stub-trace",
                        }
                    }
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.send_header("X-Trace-Id", "stub-trace")
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                self._serve("GET")

            def do_POST(self):
                self._serve("POST")

            def do_DELETE(self):
                self._serve("DELETE")

        self._httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address
        return f"http://{host}:{port}"

    def count(self, method: str, path: str) -> int:
        return self.requests.count((method, path))

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()


@pytest.fixture()
def stub():
    server = StubServer()
    yield server
    server.close()


def fast_client(stub, **kwargs) -> ServiceClient:
    kwargs.setdefault("retry", RetryPolicy(attempts=3, base_s=0.001, cap_s=0.002))
    kwargs.setdefault("retry_seed", 0)
    return ServiceClient(stub.url, **kwargs)


class TestRetrySchedule:
    def test_get_retries_through_503_to_success(self, stub):
        stub.scripts[("GET", "/v1/graphs")] = [503, 503, 200]
        stub.payloads[("GET", "/v1/graphs")] = {"graphs": []}
        assert fast_client(stub).graphs() == []
        assert stub.count("GET", "/v1/graphs") == 3

    def test_get_gives_up_after_the_attempt_budget(self, stub):
        stub.scripts[("GET", "/v1/graphs")] = [503, 503, 503, 503]
        with pytest.raises(ServiceUnavailable) as caught:
            fast_client(stub).graphs()
        assert stub.count("GET", "/v1/graphs") == 3  # attempts, not scripts
        assert caught.value.trace_id == "stub-trace"

    def test_non_retryable_status_fails_immediately(self, stub):
        stub.scripts[("GET", "/v1/jobs/x")] = [404]
        with pytest.raises(ServiceError) as caught:
            fast_client(stub).job("x")
        assert caught.value.status == 404
        assert stub.count("GET", "/v1/jobs/x") == 1

    def test_429_maps_to_rate_limited_and_retries(self, stub):
        stub.scripts[("GET", "/v1/graphs")] = [429, 429, 429]
        with pytest.raises(RateLimited):
            fast_client(stub).graphs()
        assert stub.count("GET", "/v1/graphs") == 3

    def test_connection_refused_retries_then_surfaces(self):
        # a dead port: URLError on every attempt
        client = ServiceClient(
            "http://127.0.0.1:9",
            timeout=0.2,
            retry=RetryPolicy(attempts=2, base_s=0.001, cap_s=0.002),
            retry_seed=0,
        )
        with pytest.raises(urllib.error.URLError):
            client.graphs()

    def test_retry_budget_caps_total_sleep(self, stub, monkeypatch):
        stub.scripts[("GET", "/v1/graphs")] = [503] * 10
        slept = []
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: slept.append(s))
        client = ServiceClient(
            stub.url,
            retry=RetryPolicy(attempts=10, base_s=1.0, cap_s=8.0, jitter=False, budget_s=3.0),
        )
        with pytest.raises(ServiceUnavailable):
            client.graphs()
        assert sum(slept) <= 3.0  # gave up once the next sleep would overrun


class TestPostIdempotency:
    def test_post_without_key_is_not_retried(self, stub):
        stub.scripts[("POST", "/v1/jobs")] = [503, 200]
        with pytest.raises(ServiceUnavailable):
            fast_client(stub).submit_job("f" * 64, kind="dse", idempotency_key="")
        assert stub.count("POST", "/v1/jobs") == 1

    def test_post_with_minted_key_is_retried(self, stub):
        stub.scripts[("POST", "/v1/jobs")] = [503, 200]
        stub.payloads[("POST", "/v1/jobs")] = {"id": "j1", "state": "queued"}
        job = fast_client(stub).submit_job("f" * 64, kind="dse")  # key auto-minted
        assert job["id"] == "j1"
        assert stub.count("POST", "/v1/jobs") == 2

    def test_graph_registration_is_always_retried(self, stub, fig1):
        from repro.io.jsonio import graph_to_dict

        stub.scripts[("POST", "/v1/graphs")] = [503, 200]
        stub.payloads[("POST", "/v1/graphs")] = {"fingerprint": "f" * 64, "known": False}
        assert fast_client(stub).submit_graph(graph_to_dict(fig1)) == "f" * 64
        assert stub.count("POST", "/v1/graphs") == 2


class TestDeterministicJitter:
    def test_seeded_clients_sleep_identical_schedules(self, stub, monkeypatch):
        policy = RetryPolicy(attempts=4, base_s=0.5, cap_s=4.0)
        schedules = []
        for _ in range(2):
            stub.scripts[("GET", "/v1/graphs")] = [503, 503, 503, 503]
            slept: list[float] = []
            monkeypatch.setattr(
                "repro.service.client.time.sleep", lambda s, slept=slept: slept.append(s)
            )
            client = ServiceClient(stub.url, retry=policy, retry_seed=1234)
            with pytest.raises(ServiceUnavailable):
                client.graphs()
            schedules.append(slept)
        assert schedules[0] == schedules[1]
        assert len(schedules[0]) == 3  # one sleep between each of 4 attempts
        import random

        rng = random.Random(1234)
        expected = [policy.delay(attempt, rng) for attempt in range(3)]
        assert schedules[0] == expected


class TestResultHelper:
    def test_result_raises_job_failed_with_the_job_attached(self, stub):
        stub.payloads[("GET", "/v1/jobs/j1")] = {
            "id": "j1", "state": "failed", "error": "boom",
        }
        with pytest.raises(JobFailed) as caught:
            fast_client(stub).result("j1", timeout=1.0)
        assert "boom" in str(caught.value)
        assert caught.value.job["id"] == "j1"

    def test_result_raises_job_partial_on_budget_exhaustion(self, stub):
        stub.payloads[("GET", "/v1/jobs/j1")] = {
            "id": "j1", "state": "partial", "exhausted": "max_probes",
        }
        with pytest.raises(JobPartial) as caught:
            fast_client(stub).result("j1", timeout=1.0)
        assert caught.value.status == 206
        assert "max_probes" in str(caught.value)

    def test_result_returns_the_payload_when_done(self, stub):
        stub.payloads[("GET", "/v1/jobs/j1")] = {
            "id": "j1", "state": "done", "result": {"throughput": "1/7"},
        }
        assert fast_client(stub).result("j1", timeout=1.0) == {"throughput": "1/7"}

    def test_legacy_error_body_still_decodes(self, stub):
        # api_prefix="" talks to the unversioned aliases whose errors
        # are plain strings; the client must map them the same way.
        client = ServiceClient(stub.url, api_prefix="", retry=RetryPolicy.none())
        stub.scripts[("GET", "/jobs/x")] = [404]
        with pytest.raises(ServiceError) as caught:
            client.job("x")
        assert caught.value.status == 404
