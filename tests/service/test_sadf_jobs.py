"""The service plane runs all-scenario (SADF) explorations end to end.

Covers the ``dse-sadf`` job kind: registry round-trips for sadfjson
documents, the pinned h263-frames front served through the job
manager, kind/graph mismatch guards, per-scenario memo banks warming
identical re-submissions, budget-partial jobs converging over several
legs after restarts, and the /v1 HTTP surface.
"""

import json
import time

import pytest

from repro.exceptions import ServiceError
from repro.gallery import h263_frames, modem_modes
from repro.io.sadfjson import sadf_fingerprint, sadf_to_dict
from repro.sadf.graph import SADFGraph
from repro.service.jobs import JOB_KINDS, JobManager, JobSpec
from repro.service.registry import GraphRegistry
from repro.service.server import AnalysisServer

PINNED_FRONT = [(9, "1/13"), (10, "1/11")]


def wait_for(predicate, timeout=30.0, step=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(step)
    raise AssertionError("condition not reached within timeout")


def front_of(job):
    return [
        (point["size"], point["throughput"])
        for point in job.result["pareto_front"]
    ]


class TestRegistry:
    def test_instance_and_document_share_a_fingerprint(self):
        registry = GraphRegistry()
        from_instance, known = registry.add(h263_frames())
        assert not known
        from_document, known = registry.add(sadf_to_dict(h263_frames()))
        assert known
        assert from_instance == from_document == sadf_fingerprint(h263_frames())
        assert isinstance(registry.get(from_instance), SADFGraph)

    def test_sadf_documents_survive_a_restart(self, tmp_path):
        registry = GraphRegistry(tmp_path)
        fingerprint, _ = registry.add(modem_modes())
        reloaded = GraphRegistry(tmp_path).get(fingerprint)
        assert isinstance(reloaded, SADFGraph)
        assert reloaded.scenario_names == ["acquisition", "tracking"]
        assert sadf_fingerprint(reloaded) == fingerprint


class TestJobKind:
    def test_dse_sadf_is_a_registered_kind(self):
        assert "dse-sadf" in JOB_KINDS

    def test_job_serves_the_pinned_front(self):
        registry = GraphRegistry()
        fingerprint, _ = registry.add(h263_frames())
        manager = JobManager(registry)
        try:
            job = manager.submit(
                JobSpec(kind="dse-sadf", fingerprint=fingerprint, observe="mc")
            )
            wait_for(lambda: job.state == "done")
            assert front_of(job) == PINNED_FRONT
            assert job.result["max_throughput"] == "1/11"
            assert job.result["stats"]["evaluations"] == 12
            assert job.result["stats"]["strategy"] == "sadf-dependency"
        finally:
            manager.drain()

    def test_kind_graph_mismatch_is_rejected_both_ways(self, fig1):
        registry = GraphRegistry()
        sdf_fp, _ = registry.add(fig1)
        sadf_fp, _ = registry.add(h263_frames())
        manager = JobManager(registry)
        try:
            with pytest.raises(ServiceError, match="does not fit"):
                manager.submit(
                    JobSpec(kind="dse-sadf", fingerprint=sdf_fp, observe="c")
                )
            with pytest.raises(ServiceError, match="does not fit"):
                manager.submit(
                    JobSpec(kind="dse", fingerprint=sadf_fp, observe="mc")
                )
        finally:
            manager.drain()

    def test_identical_resubmission_is_answered_from_the_banks(self):
        registry = GraphRegistry()
        fingerprint, _ = registry.add(h263_frames())
        manager = JobManager(registry)
        try:
            first = manager.submit(
                JobSpec(kind="dse-sadf", fingerprint=fingerprint, observe="mc")
            )
            wait_for(lambda: first.state == "done")
            second = manager.submit(
                JobSpec(kind="dse-sadf", fingerprint=fingerprint, observe="mc")
            )
            wait_for(lambda: second.state == "done")
            assert front_of(second) == PINNED_FRONT
            assert second.result["stats"]["evaluations"] == 0
            assert second.result["stats"]["cache_hits"] >= 12
        finally:
            manager.drain()


class TestBudgetLegs:
    def test_partial_job_converges_across_restarts(self, tmp_path):
        registry = GraphRegistry(tmp_path)
        fingerprint, _ = registry.add(h263_frames())
        manager = JobManager(registry, tmp_path)
        job = manager.submit(
            JobSpec(
                kind="dse-sadf", fingerprint=fingerprint, observe="mc",
                max_probes=4,
            )
        )
        wait_for(lambda: job.state == "partial")
        assert job.exhausted == "probes"
        assert (tmp_path / "checkpoints" / f"{job.id}.ckpt.json").exists()
        manager.drain()

        job_id, legs = job.id, 1
        while True:
            reborn = JobManager(GraphRegistry(tmp_path), tmp_path)
            try:
                recovered = reborn.get(job_id)
                wait_for(lambda: recovered.state in ("done", "partial"))
                legs += 1
                if recovered.state == "done":
                    break
            finally:
                reborn.drain()
            assert legs < 10, "job failed to converge"
        assert front_of(recovered) == PINNED_FRONT
        assert recovered.result["complete"] is True


class TestHttpApi:
    def test_v1_end_to_end(self):
        with AnalysisServer(workers=1) as server:
            document = json.dumps(sadf_to_dict(h263_frames())).encode("utf-8")
            created = server.api.handle("POST", "/v1/graphs", document)
            assert created.status == 201
            fingerprint = json.loads(created.body)["fingerprint"]

            submitted = server.api.handle(
                "POST", "/v1/jobs",
                json.dumps(
                    {"kind": "dse-sadf", "graph": fingerprint, "observe": "mc"}
                ).encode("utf-8"),
            )
            assert submitted.status == 202
            job_id = json.loads(submitted.body)["id"]

            def state():
                response = server.api.handle("GET", f"/v1/jobs/{job_id}")
                return json.loads(response.body)

            wait_for(lambda: state()["state"] == "done")
            result = state()["result"]
            assert [
                (point["size"], point["throughput"])
                for point in result["pareto_front"]
            ] == PINNED_FRONT

    def test_inline_document_defaults_observe_to_the_last_actor(self):
        with AnalysisServer(workers=1) as server:
            submitted = server.api.handle(
                "POST", "/v1/jobs",
                json.dumps(
                    {"kind": "dse-sadf", "graph": sadf_to_dict(h263_frames())}
                ).encode("utf-8"),
            )
            assert submitted.status == 202
            payload = json.loads(submitted.body)
            assert payload["observe"] == "mc"
