"""Unit tests for the resilience primitives: circuit breaker state
machine (on a fake clock), bulkhead partition math, retry schedules."""

import random

import pytest

from repro.exceptions import ServiceError
from repro.runtime.telemetry import TelemetryHub
from repro.service.resilience import (
    JOB_CLASSES,
    Bulkhead,
    CircuitBreaker,
    RetryPolicy,
    classify,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**kwargs):
    clock = FakeClock()
    defaults = dict(
        window=8, min_calls=4, failure_threshold=0.5, cooldown_s=5.0, half_open_max=2
    )
    defaults.update(kwargs)
    return CircuitBreaker("test", clock=clock, **defaults), clock


class TestClassify:
    def test_kind_defaults(self):
        assert classify("throughput") == "interactive"
        assert classify("minimal-distribution") == "interactive"
        assert classify("dse") == "batch"

    def test_explicit_override_wins(self):
        assert classify("dse", "interactive") == "interactive"
        assert classify("throughput", "batch") == "batch"

    def test_unknown_class_rejected(self):
        with pytest.raises(ServiceError, match="unknown job class"):
            classify("dse", "bulk")


class TestCircuitBreakerTransitions:
    def test_starts_closed_and_allows(self):
        breaker, _clock = make_breaker()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failures_below_min_calls_do_not_trip(self):
        breaker, _clock = make_breaker(min_calls=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "closed"

    def test_opens_at_failure_threshold(self):
        breaker, _clock = make_breaker(min_calls=4, failure_threshold=0.5)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # 1/3 failures, below threshold
        breaker.record_failure()  # 2/4 = 0.5 >= threshold
        assert breaker.state == "open"
        assert breaker.counters["opened"] == 1

    def test_open_rejects_and_counts(self):
        breaker, _clock = make_breaker()
        for _ in range(4):
            breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.counters["rejected"] == 2

    def test_retry_after_counts_down_with_the_clock(self):
        breaker, clock = make_breaker(cooldown_s=5.0)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.retry_after_s == pytest.approx(5.0)
        clock.advance(2.0)
        assert breaker.retry_after_s == pytest.approx(3.0)

    def test_cooldown_advances_to_half_open(self):
        breaker, clock = make_breaker(cooldown_s=5.0)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(4.999)
        assert breaker.state == "open"
        clock.advance(0.001)
        assert breaker.state == "half-open"
        assert breaker.counters["half_opened"] == 1

    def test_half_open_admits_bounded_trials(self):
        breaker, clock = make_breaker(half_open_max=2)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both trial slots taken

    def test_half_open_success_closes_and_clears_window(self):
        breaker, clock = make_breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failure_rate == 0.0  # old failures forgotten
        assert breaker.counters["closed"] == 1

    def test_half_open_failure_reopens(self):
        breaker, clock = make_breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.counters["opened"] == 2
        # the new open period needs its own cooldown
        assert breaker.retry_after_s == pytest.approx(5.0)

    def test_release_gives_back_a_trial_slot(self):
        breaker, clock = make_breaker(half_open_max=1)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.release()  # admitted work never executed
        assert breaker.allow()

    def test_sliding_window_drops_stale_failures(self):
        breaker, _clock = make_breaker(window=4, min_calls=4, failure_threshold=0.75)
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(4):  # pushes the failures out of the window
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()  # 3/4 = 0.75 in the window -> trips now
        assert breaker.state == "open"

    def test_transitions_emit_telemetry(self):
        clock = FakeClock()
        hub = TelemetryHub()
        breaker = CircuitBreaker(
            "interactive", window=8, min_calls=2, cooldown_s=1.0, clock=clock, telemetry=hub
        )
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        counters = hub.counters
        assert counters["breaker_open"] == 1
        assert counters["breaker_rejected"] == 1
        assert counters["breaker_half_open"] == 1
        assert counters["breaker_close"] == 1

    def test_snapshot_shape(self):
        breaker, _clock = make_breaker()
        snapshot = breaker.snapshot()
        assert snapshot["name"] == "test"
        assert snapshot["state"] == "closed"
        assert snapshot["failure_rate"] == 0.0
        assert set(snapshot["counters"]) == {"rejected", "opened", "half_opened", "closed"}

    def test_validation(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(window=0)
        with pytest.raises(ServiceError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ServiceError):
            CircuitBreaker(failure_threshold=1.5)
        with pytest.raises(ServiceError):
            CircuitBreaker(cooldown_s=0)
        with pytest.raises(ServiceError):
            CircuitBreaker(half_open_max=0)


class TestBulkhead:
    def test_default_all_workers_float(self):
        bulkhead = Bulkhead(3)
        for index in range(3):
            assert bulkhead.allowed_classes(index) == JOB_CLASSES

    def test_reserved_workers_are_pinned_in_class_order(self):
        bulkhead = Bulkhead(4, reserved={"interactive": 1, "batch": 2})
        assert bulkhead.allowed_classes(0) == ("interactive",)
        assert bulkhead.allowed_classes(1) == ("batch",)
        assert bulkhead.allowed_classes(2) == ("batch",)
        assert bulkhead.allowed_classes(3) == JOB_CLASSES  # floater

    def test_reservations_cannot_exceed_pool(self):
        with pytest.raises(ServiceError, match="exceed the"):
            Bulkhead(2, reserved={"interactive": 2, "batch": 1})

    def test_unknown_class_rejected(self):
        with pytest.raises(ServiceError, match="unknown bulkhead class"):
            Bulkhead(2, reserved={"bulk": 1})
        with pytest.raises(ServiceError, match="unknown bulkhead class"):
            Bulkhead(2, queue_caps={"bulk": 1})

    def test_queue_caps_gate_admission(self):
        bulkhead = Bulkhead(2, queue_caps={"batch": 2})
        assert bulkhead.admits("batch", 0)
        assert bulkhead.admits("batch", 1)
        assert not bulkhead.admits("batch", 2)
        assert bulkhead.admits("interactive", 10_000)  # uncapped

    def test_to_dict(self):
        bulkhead = Bulkhead(3, reserved={"interactive": 1}, queue_caps={"batch": 4})
        assert bulkhead.to_dict() == {
            "workers": 3,
            "reserved": {"interactive": 1, "batch": 0},
            "queue_caps": {"interactive": None, "batch": 4},
        }


class TestRetryPolicy:
    def test_envelope_without_jitter(self):
        policy = RetryPolicy(base_s=0.1, cap_s=2.0, multiplier=2.0, jitter=False)
        rng = random.Random(0)
        assert [policy.delay(a, rng) for a in range(6)] == [
            0.1, 0.2, 0.4, 0.8, 1.6, 2.0  # capped
        ]

    def test_jitter_is_deterministic_under_a_seed(self):
        policy = RetryPolicy()
        first = [policy.delay(a, random.Random(42)) for a in range(4)]
        second = [policy.delay(a, random.Random(42)) for a in range(4)]
        assert first == second

    def test_jitter_stays_within_the_envelope(self):
        policy = RetryPolicy(base_s=0.1, cap_s=2.0, multiplier=2.0)
        rng = random.Random(7)
        for attempt in range(8):
            delay = policy.delay(attempt, rng)
            assert 0.0 <= delay <= min(2.0, 0.1 * 2.0**attempt)

    def test_none_policy_never_retries(self):
        assert RetryPolicy.none().attempts == 1

    def test_validation(self):
        with pytest.raises(ServiceError):
            RetryPolicy(attempts=0)
        with pytest.raises(ServiceError):
            RetryPolicy(base_s=-1)
        with pytest.raises(ServiceError):
            RetryPolicy(multiplier=0.5)
