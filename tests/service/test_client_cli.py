"""CLI tests: ``repro submit`` / ``repro jobs`` against an in-process
server, plus one real ``repro serve`` subprocess smoke test."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.io.jsonio import write_json
from repro.service.cli import main
from repro.service.server import AnalysisServer


@pytest.fixture()
def server():
    with AnalysisServer(workers=1) as running:
        yield running


@pytest.fixture()
def graph_file(tmp_path, fig1):
    path = tmp_path / "fig1.json"
    write_json(fig1, path)
    return str(path)


class TestSubmit:
    def test_dse_wait_prints_front_and_exits_zero(self, server, graph_file, capsys):
        code = main(
            ["submit", graph_file, "--url", server.url, "--observe", "c", "--wait"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "-> done" in out
        assert "Pareto points: 4" in out
        assert "size=6 throughput=1/7" in out
        assert "9 evaluations" in out

    def test_json_output_is_machine_readable(self, server, graph_file, capsys):
        code = main(
            ["submit", graph_file, "--url", server.url, "--observe", "c",
             "--wait", "--json"]
        )
        assert code == 0
        job = json.loads(capsys.readouterr().out)
        assert job["state"] == "done"
        assert job["result"]["schema"] == 1
        assert [p["size"] for p in job["result"]["pareto_front"]] == [6, 8, 9, 10]

    def test_throughput_kind(self, server, graph_file, capsys):
        code = main(
            ["submit", graph_file, "--url", server.url, "--observe", "c",
             "--kind", "throughput", "--capacities", "alpha=4,beta=2", "--wait"]
        )
        assert code == 0
        assert "throughput: 1/7" in capsys.readouterr().out

    def test_minimal_distribution_kind(self, server, graph_file, capsys):
        code = main(
            ["submit", graph_file, "--url", server.url, "--observe", "c",
             "--kind", "minimal-distribution", "--throughput", "1/5", "--wait"]
        )
        assert code == 0
        assert "minimal size 9" in capsys.readouterr().out

    def test_partial_exits_3(self, server, graph_file, capsys):
        code = main(
            ["submit", graph_file, "--url", server.url, "--observe", "c",
             "--max-probes", "3", "--wait"]
        )
        assert code == 3
        assert "partial" in capsys.readouterr().out

    def test_missing_constraint_exits_2(self, server, graph_file, capsys):
        code = main(
            ["submit", graph_file, "--url", server.url,
             "--kind", "minimal-distribution"]
        )
        assert code == 2
        assert "--throughput is required" in capsys.readouterr().err

    def test_unreachable_server_exits_1(self, graph_file, capsys):
        code = main(
            ["submit", graph_file, "--url", "http://127.0.0.1:1", "--observe", "c"]
        )
        assert code == 1
        assert "cannot reach the server" in capsys.readouterr().err


class TestJobsVerb:
    def test_empty_table(self, server, capsys):
        assert main(["jobs", "--url", server.url]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_list_show_and_cancel(self, server, graph_file, capsys):
        main(["submit", graph_file, "--url", server.url, "--observe", "c", "--wait"])
        capsys.readouterr()

        assert main(["jobs", "--url", server.url]) == 0
        table = capsys.readouterr().out
        assert "done" in table and "dse" in table

        job_id = table.split()[0]
        assert main(["jobs", job_id, "--url", server.url, "--json"]) == 0
        job = json.loads(capsys.readouterr().out)
        assert job["id"] == job_id and job["state"] == "done"

    def test_cancel_needs_job_id(self, server, capsys):
        assert main(["jobs", "--cancel", "--url", server.url]) == 2
        assert "needs a job id" in capsys.readouterr().err


class TestBackendsVerb:
    def test_local_listing(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "reference: available" in out
        assert "blocking" in out
        assert "cc:" in out  # available or unavailable — but listed

    def test_local_json(self, capsys):
        from repro.engine.backends import backend_names

        assert main(["backends", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in rows] == list(backend_names())
        assert all({"name", "capabilities", "available", "reason"} <= set(row) for row in rows)

    def test_remote_listing_via_url(self, server, capsys):
        assert main(["backends", "--url", server.url, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(row["name"] == "batch-numpy" and row["available"] for row in rows)


class TestServeSubprocess:
    def test_serve_smoke_sigterm_drains(self, tmp_path, graph_file):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.service.cli", "serve",
             "--port", "0", "--data-dir", str(tmp_path / "state")],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "repro serve: listening on " in line
            url = line.strip().rsplit(" ", 1)[-1]

            from repro.service.client import ServiceClient

            client = ServiceClient(url)
            deadline = time.monotonic() + 10
            while True:
                try:
                    health = client.healthz()
                    break
                except OSError:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
            assert health["status"] == "ok"

            job = client.submit_job(
                json.loads(Path(graph_file).read_text()), kind="dse", observe="c"
            )
            assert client.wait(job["id"])["state"] == "done"

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
            rest = process.stdout.read()
            assert "repro serve: stopped" in rest
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
