"""The versioned surface: /v1 routes, the typed error envelope, trace
ids end to end, and the legacy aliases' unchanged behaviour."""

import json

import pytest

from repro.io.jsonio import graph_to_dict
from repro.service.api import AnalysisApi, mint_trace_id
from repro.service.server import AnalysisServer


@pytest.fixture()
def server():
    with AnalysisServer(workers=1) as running:
        yield running


def body(response) -> dict:
    return json.loads(response.body)


class TestVersionedRoutes:
    def test_v1_routes_mirror_legacy_routes(self, server, fig1):
        document = json.dumps(graph_to_dict(fig1)).encode("utf-8")
        created = server.api.handle("POST", "/v1/graphs", document)
        assert created.status == 201
        fingerprint = body(created)["fingerprint"]
        assert body(server.api.handle("GET", "/v1/graphs"))["graphs"] == [fingerprint]
        assert body(server.api.handle("GET", "/graphs"))["graphs"] == [fingerprint]
        assert body(server.api.handle("GET", "/v1/healthz"))["status"] == "ok"
        assert server.api.handle("GET", "/v1/metrics").status == 200
        assert body(server.api.handle("GET", "/v1/jobs"))["jobs"] == []

    def test_route_label_keeps_the_version_prefix(self):
        assert AnalysisApi.route_label("get", "/v1/jobs/abc") == "GET /v1/jobs/<id>"
        assert AnalysisApi.route_label("GET", "/v1/traces/t1") == "GET /v1/traces/<id>"
        assert AnalysisApi.route_label("GET", "/jobs/abc") == "GET /jobs/<id>"

    def test_unknown_v1_route_is_404(self, server):
        assert server.api.handle("GET", "/v1/nope").status == 404


class TestTraceIds:
    def test_every_response_carries_a_trace_header(self, server):
        response = server.api.handle("GET", "/v1/healthz")
        assert response.headers["X-Trace-Id"]
        legacy = server.api.handle("GET", "/healthz")
        assert legacy.headers["X-Trace-Id"]

    def test_v1_json_payloads_echo_the_trace_id(self, server):
        response = server.api.handle("GET", "/v1/healthz")
        assert body(response)["trace_id"] == response.headers["X-Trace-Id"]
        # legacy payloads stay byte-stable: no injected field
        legacy = server.api.handle("GET", "/healthz")
        assert "trace_id" not in body(legacy)

    def test_wellformed_client_trace_id_is_adopted(self, server):
        response = server.api.handle(
            "GET", "/v1/healthz", headers={"X-Trace-Id": "my-trace_01"}
        )
        assert response.headers["X-Trace-Id"] == "my-trace_01"

    def test_malformed_client_trace_id_is_replaced(self, server):
        for bad in ("", "with space", "x" * 65, "bad\nheader"):
            response = server.api.handle(
                "GET", "/v1/healthz", headers={"X-Trace-Id": bad}
            )
            assert response.headers["X-Trace-Id"] != bad

    def test_trace_is_recorded_and_queryable(self, server, fig1):
        trace_id = mint_trace_id()
        document = json.dumps(graph_to_dict(fig1)).encode("utf-8")
        posted = server.api.handle(
            "POST", "/v1/graphs", document, headers={"X-Trace-Id": trace_id}
        )
        assert posted.headers["X-Trace-Id"] == trace_id
        span = body(server.api.handle("GET", f"/v1/traces/{trace_id}"))
        assert span["name"] == "POST /v1/graphs"
        assert span["status"] == 201
        assert span["versioned"] is True
        assert span["elapsed_s"] >= 0
        listed = body(server.api.handle("GET", "/v1/traces"))["traces"]
        assert any(entry["trace_id"] == trace_id for entry in listed)

    def test_unknown_trace_is_404(self, server):
        response = server.api.handle("GET", "/v1/traces/deadbeef")
        assert response.status == 404

    def test_submitted_job_carries_the_request_trace_id(self, server, fig1):
        trace_id = mint_trace_id()
        payload = json.dumps({"graph": graph_to_dict(fig1), "kind": "dse"}).encode()
        response = server.api.handle(
            "POST", "/v1/jobs", payload, headers={"X-Trace-Id": trace_id}
        )
        assert response.status == 202
        job = body(response)
        assert job["trace_id"] == trace_id
        # the id is also in the job table and the server-side span log
        fetched = body(server.api.handle("GET", f"/v1/jobs/{job['id']}"))
        assert fetched["trace_id"] == trace_id
        assert server.manager.telemetry.traces.get(trace_id) is not None


class TestErrorEnvelope:
    def test_v1_errors_use_the_typed_envelope(self, server):
        response = server.api.handle("GET", "/v1/jobs/nope")
        assert response.status == 404
        error = body(response)["error"]
        assert error["code"] == "not_found"
        assert "unknown job" in error["message"]
        assert error["trace_id"] == response.headers["X-Trace-Id"]

    def test_legacy_errors_keep_the_string_shape(self, server):
        response = server.api.handle("GET", "/jobs/nope")
        assert response.status == 404
        assert isinstance(body(response)["error"], str)
        assert "unknown job" in body(response)["error"]

    def test_bad_json_maps_to_bad_request_code(self, server):
        response = server.api.handle("POST", "/v1/graphs", b"{nope")
        assert response.status == 400
        assert body(response)["error"]["code"] == "bad_request"

    def test_breaker_rejection_carries_retry_after(self, server, fig1):
        breaker = server.manager.breakers["batch"]
        for _ in range(4):
            breaker.record_failure()
        payload = json.dumps({"graph": graph_to_dict(fig1), "kind": "dse"}).encode()
        response = server.api.handle("POST", "/v1/jobs", payload)
        assert response.status == 503
        assert body(response)["error"]["code"] == "breaker_open"
        assert float(response.headers["Retry-After"]) > 0


class TestDeprecationHeader:
    def test_legacy_routes_answer_deprecated(self, server):
        response = server.api.handle("GET", "/healthz")
        assert response.headers["Deprecation"] == "true"

    def test_v1_routes_do_not(self, server):
        response = server.api.handle("GET", "/v1/healthz")
        assert "Deprecation" not in response.headers


class TestResilienceObservability:
    def test_healthz_reports_the_resilience_plane(self, server):
        health = body(server.api.handle("GET", "/v1/healthz"))
        assert health["queue_depth_by_class"] == {"interactive": 0, "batch": 0}
        assert {b["name"] for b in health["breakers"]} == {"interactive", "batch"}
        assert all(b["state"] == "closed" for b in health["breakers"])
        assert health["bulkhead"]["workers"] == 1

    def test_metrics_expose_breaker_and_class_gauges(self, server):
        text = server.api.handle("GET", "/v1/metrics").body.decode("utf-8")
        assert 'repro_queue_depth_class{class="interactive"} 0.0' in text
        assert 'repro_queue_depth_class{class="batch"} 0.0' in text
        assert 'repro_breaker_state{class="interactive"} 0.0' in text
        assert 'repro_breaker_rejected{class="batch"} 0.0' in text

    def test_breaker_state_gauge_tracks_transitions(self, server):
        server.manager.breakers["batch"].record_failure()
        for _ in range(3):
            server.manager.breakers["batch"].record_failure()
        text = server.api.handle("GET", "/v1/metrics").body.decode("utf-8")
        assert 'repro_breaker_state{class="batch"} 2.0' in text  # open
