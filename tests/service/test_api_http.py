"""End-to-end HTTP tests: AnalysisServer + ServiceClient over a socket.

Each test gets a fresh ephemeral-port server; the acceptance-criterion
test checks a DSE job served over HTTP is *identical* to the
in-process result — including stats and witnesses.
"""

import json
import time

import pytest

from repro.buffers.explorer import DesignSpaceResult, explore_design_space
from repro.exceptions import ServiceError
from repro.io.jsonio import graph_to_dict
from repro.service.api import AnalysisApi
from repro.service.client import ServiceClient
from repro.service.server import AnalysisServer


@pytest.fixture()
def server():
    with AnalysisServer(workers=1) as running:
        yield running


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestJobIdentity:
    def test_http_dse_front_identical_to_direct(self, client, fig1):
        job = client.submit_job(graph_to_dict(fig1), kind="dse", observe="c")
        finished = client.wait(job["id"])
        assert finished["state"] == "done"

        direct = explore_design_space(fig1, "c")
        served = DesignSpaceResult.from_dict(finished["result"])
        assert served.front == direct.front
        assert served.max_throughput == direct.max_throughput
        assert served.lower_bounds == direct.lower_bounds
        assert finished["result"]["stats"]["evaluations"] == direct.stats.evaluations == 9
        # bit-identical payloads once the direct result is serialised too
        assert finished["result"]["pareto_front"] == direct.to_dict()["pareto_front"]

    def test_throughput_and_minimal_kinds_over_http(self, client, fig1):
        graph = graph_to_dict(fig1)
        probe = client.wait(
            client.submit_job(
                graph,
                kind="throughput",
                observe="c",
                params={"capacities": {"alpha": 4, "beta": 2}},
            )["id"]
        )
        assert probe["state"] == "done"
        assert probe["result"]["throughput"] == "1/7"

        minimal = client.wait(
            client.submit_job(
                graph, kind="minimal-distribution", observe="c", params={"throughput": "1/4"}
            )["id"]
        )
        assert minimal["result"] == {
            "found": True,
            "size": 10,
            "throughput": "1/4",
            "distribution": minimal["result"]["distribution"],
        }


class TestGraphEndpoints:
    def test_post_graph_then_submit_by_fingerprint(self, server, client, fig1):
        document = json.dumps(graph_to_dict(fig1)).encode("utf-8")
        first = server.api.handle("POST", "/graphs", document)
        assert first.status == 201 and not json.loads(first.body)["known"]
        second = server.api.handle("POST", "/graphs", document)
        assert second.status == 200 and json.loads(second.body)["known"]

        fingerprint = client.submit_graph(graph_to_dict(fig1))
        assert fingerprint == json.loads(first.body)["fingerprint"]
        assert fingerprint in client.graphs()

        job = client.submit_job(fingerprint, kind="dse", observe="c")
        assert client.wait(job["id"])["state"] == "done"

    def test_observe_defaults_to_last_actor(self, client, fig1):
        job = client.submit_job(graph_to_dict(fig1), kind="dse")
        assert job["observe"] == "c"


class TestErrorPaths:
    def test_bad_json_body_is_400(self, server, fig1):
        response = server.api.handle("POST", "/graphs", b"{not json")
        assert response.status == 400
        assert "not valid JSON" in json.loads(response.body)["error"]

    def test_unknown_graph_fingerprint_is_404(self, client):
        with pytest.raises(ServiceError) as caught:
            client.submit_job("0" * 64, kind="dse", observe="c")
        assert caught.value.status == 404

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as caught:
            client.job("doesnotexist")
        assert caught.value.status == 404

    def test_unknown_route_is_404(self, server):
        assert server.api.handle("GET", "/nope").status == 404
        assert server.api.handle("PATCH", "/jobs").status == 404

    def test_unknown_observe_actor_is_400(self, client, fig1):
        with pytest.raises(ServiceError) as caught:
            client.submit_job(graph_to_dict(fig1), kind="dse", observe="ghost")
        assert caught.value.status == 400
        assert "no actor" in str(caught.value)

    def test_delete_terminal_job_is_409(self, client, fig1):
        job = client.submit_job(graph_to_dict(fig1), kind="dse", observe="c")
        client.wait(job["id"])
        with pytest.raises(ServiceError) as caught:
            client.cancel(job["id"])
        assert caught.value.status == 409


class TestCancellationOverHttp:
    def test_delete_running_dse_yields_cancelled_with_partial(self, server, client, fig1):
        entered = []

        def hold_first_probe(job, event):
            if event.name == "probe_finish" and not entered:
                entered.append(job.id)
                # in-flight DELETE from the HTTP side
                client.cancel(job.id)

        server.manager.probe_callback = hold_first_probe
        job = client.submit_job(graph_to_dict(fig1), kind="dse", observe="c")
        finished = client.wait(job["id"])
        assert finished["state"] == "cancelled"
        partial = DesignSpaceResult.from_dict(finished["result"])
        assert not partial.complete
        assert partial.exhausted == "cancelled"


class TestObservability:
    def test_healthz_shape(self, client, fig1):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["api_version"] == 1
        assert health["uptime_s"] >= 0
        assert set(health["jobs"]) == {
            "queued", "running", "done", "partial", "failed", "cancelled",
        }

    def test_metrics_exposition(self, client, fig1):
        job = client.submit_job(graph_to_dict(fig1), kind="dse", observe="c")
        client.wait(job["id"])
        text = client.metrics()
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{event="probe_start"}' in text
        assert 'repro_jobs{state="done"} 1.0' in text
        assert "repro_queue_depth 0.0" in text
        assert "repro_graphs_registered 1.0" in text
        assert 'repro_timer_seconds_count{timer="http POST /v1/jobs"}' in text
        assert 'repro_timer_seconds_count{timer="http GET /v1/jobs/<id>"}' in text
        # a scrape's own timer closes after rendering: visible next scrape
        assert 'repro_timer_seconds_count{timer="http GET /v1/metrics"}' in client.metrics()

    def test_probe_avoidance_gauges_default_to_zero(self, client):
        text = client.metrics()
        assert "repro_bounds_exact 0.0" in text
        assert "repro_bounds_cut 0.0" in text
        assert "repro_speculative_issued 0.0" in text
        assert "repro_speculative_useful 0.0" in text
        assert "repro_speculative_wasted 0.0" in text

    def test_bounds_job_counts_exact_answers_and_keeps_the_front(self, client, fig1):
        plain = client.wait(
            client.submit_job(
                graph_to_dict(fig1),
                kind="dse",
                observe="c",
                params={"strategy": "divide"},
            )["id"]
        )
        boosted = client.wait(
            client.submit_job(
                graph_to_dict(fig1),
                kind="dse",
                observe="c",
                params={"strategy": "divide", "bounds": True, "speculate": True},
            )["id"]
        )
        assert boosted["state"] == plain["state"] == "done"
        assert boosted["result"]["pareto_front"] == plain["result"]["pareto_front"]
        # The second job resumes from the first's shared record bank:
        # the oracle answers everything without new simulations.
        assert boosted["result"]["stats"]["evaluations"] == 0
        text = client.metrics()
        for gauge in ("repro_bounds_exact", "repro_bounds_cut"):
            value = next(
                line.split()[1] for line in text.splitlines()
                if line.startswith(gauge + " ")
            )
            assert float(value) >= 0.0

    def test_batch_gauges_default_to_zero(self, client):
        text = client.metrics()
        assert "repro_batch_calls 0.0" in text
        assert "repro_batch_lanes 0.0" in text
        assert "repro_batch_occupancy 0.0" in text

    def test_batched_job_fills_lanes_and_keeps_the_front(self, client, fig1):
        # Batched job first, so its probes are paid through waves rather
        # than replayed from a previous job's shared memo bank.
        batched = client.wait(
            client.submit_job(
                graph_to_dict(fig1),
                kind="dse",
                observe="c",
                params={
                    "strategy": "divide",
                    "backend": "batch-numpy",
                    "batch": 4,
                },
            )["id"]
        )
        plain = client.wait(
            client.submit_job(
                graph_to_dict(fig1),
                kind="dse",
                observe="c",
                params={"strategy": "divide"},
            )["id"]
        )
        assert batched["state"] == plain["state"] == "done"
        assert batched["result"]["pareto_front"] == plain["result"]["pareto_front"]
        assert batched["result"]["stats"]["batch_calls"] > 0
        text = client.metrics()
        calls = next(
            float(line.split()[1]) for line in text.splitlines()
            if line.startswith("repro_batch_calls ")
        )
        lanes = next(
            float(line.split()[1]) for line in text.splitlines()
            if line.startswith("repro_batch_lanes ")
        )
        occupancy = next(
            float(line.split()[1]) for line in text.splitlines()
            if line.startswith("repro_batch_occupancy ")
        )
        assert calls > 0 and lanes >= calls
        assert occupancy == pytest.approx(lanes / calls)

    def test_unknown_backend_fails_the_job_with_a_clear_error(self, client, fig1):
        job = client.submit_job(
            graph_to_dict(fig1),
            kind="dse",
            observe="c",
            params={"backend": "warp"},
        )
        failed = client.wait(job["id"])
        assert failed["state"] == "failed"
        assert "unknown probe backend 'warp'" in failed["error"]
        assert "batch-numpy" in failed["error"]

    def test_backends_endpoint_lists_the_registry(self, client):
        from repro.engine.backends import backend_names

        rows = client.backends()
        assert [row["name"] for row in rows] == list(backend_names())
        by_name = {row["name"]: row for row in rows}
        assert by_name["reference"]["available"] is True
        assert by_name["reference"]["reason"] is None
        assert by_name["cc"]["capabilities"] == ["compiled", "exact", "lanes"]
        # cc's availability is host-dependent, but the row is coherent:
        # available XOR a human-readable reason.
        cc = by_name["cc"]
        assert cc["available"] == (cc["reason"] is None)

    def test_cc_gauges_are_exposed(self, client):
        text = client.metrics()
        for gauge in (
            "repro_cc_compiles",
            "repro_cc_cache_hits",
            "repro_cc_compile_failures",
            "repro_cc_cache_corrupt",
            "repro_cc_cache_evictions",
        ):
            assert f"{gauge} " in text

    def test_metrics_content_type_is_prometheus(self, server):
        response = server.api.handle("GET", "/metrics")
        assert response.content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert response.body.decode("utf-8").endswith("\n")

    def test_route_label_collapses_ids(self):
        assert AnalysisApi.route_label("delete", "/jobs/abc123") == "DELETE /jobs/<id>"
        assert AnalysisApi.route_label("GET", "/healthz") == "GET /healthz"


class TestClientWait:
    def test_wait_times_out_with_504(self, server, client, fig1):
        gate_released = []

        def stall(job, event):
            if not gate_released:
                time.sleep(0.2)

        server.manager.probe_callback = stall
        job = client.submit_job(graph_to_dict(fig1), kind="dse", observe="c")
        with pytest.raises(ServiceError) as caught:
            client.wait(job["id"], timeout=0.05)
        assert caught.value.status == 504
        gate_released.append(True)
        assert client.wait(job["id"], timeout=30)["state"] == "done"
