"""Restart/resume: interrupted jobs complete without re-paying probes.

The acceptance-criterion scenarios: a job parked ``partial`` by its
probe budget is re-enqueued by a restarted server and finishes with
the replayed probes answered from the checkpoint (cache hits, zero
cost); a graceful drain returns a running job to ``queued`` so the
next server run continues it.  fig1's full exploration costs exactly
9 evaluations, which makes the accounting assertions exact.
"""

import threading
import time

from repro.buffers.explorer import DesignSpaceResult, explore_design_space
from repro.service.jobs import JobManager, JobSpec
from repro.service.registry import GraphRegistry
from repro.service.server import AnalysisServer


def wait_for(predicate, timeout=30.0, step=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(step)
    raise AssertionError("condition not reached within timeout")


class TestBudgetPartialThenRestart:
    def test_partial_job_resumes_and_completes_for_free(self, tmp_path, fig1):
        registry = GraphRegistry(tmp_path)
        fingerprint, _ = registry.add(fig1)
        manager = JobManager(registry, tmp_path)
        job = manager.submit(
            JobSpec(kind="dse", fingerprint=fingerprint, observe="c", max_probes=5)
        )
        wait_for(lambda: job.state == "partial")
        assert job.exhausted == "probes"
        assert job.result["stats"]["evaluations"] == 5
        assert (tmp_path / "checkpoints" / f"{job.id}.ckpt.json").exists()
        manager.drain()

        reborn = JobManager(GraphRegistry(tmp_path), tmp_path)
        try:
            recovered = reborn.get(job.id)
            wait_for(lambda: recovered.state == "done")
            stats = recovered.result["stats"]
            # cumulative over both legs: exactly the direct cost, and the
            # 5 leg-1 probes came back as checkpoint cache hits
            direct = explore_design_space(fig1, "c")
            assert stats["evaluations"] == direct.stats.evaluations == 9
            assert stats["cache_hits"] >= 5
            assert recovered.legs == 2
            served = DesignSpaceResult.from_dict(recovered.result)
            assert served.front == direct.front
        finally:
            reborn.drain()


class TestGracefulDrain:
    def test_drain_requeues_running_job_without_cancelling_it(self, tmp_path, fig1):
        registry = GraphRegistry(tmp_path)
        fingerprint, _ = registry.add(fig1)
        manager = JobManager(registry, tmp_path)
        entered = threading.Event()
        release = threading.Event()

        def hold(job, event):
            if event.name == "probe_finish":
                entered.set()
                release.wait(timeout=30.0)

        manager.probe_callback = hold
        job = manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
        entered.wait(timeout=30.0)

        drainer = threading.Thread(target=manager.drain)
        drainer.start()
        wait_for(lambda: job.cancel.cancelled)  # drain fired the token...
        release.set()  # ...now let the worker reach the probe boundary
        drainer.join(timeout=30.0)

        assert job.state == "queued"  # interrupted, NOT cancelled
        assert not job.cancel_requested

        reborn = JobManager(GraphRegistry(tmp_path), tmp_path)
        try:
            recovered = reborn.get(job.id)
            wait_for(lambda: recovered.state == "done")
            assert recovered.result["stats"]["evaluations"] == 9
            assert recovered.result["stats"]["cache_hits"] >= 1
        finally:
            reborn.drain()


class TestServerLevelRestart:
    def test_stopped_server_resumes_partial_job_on_same_data_dir(self, tmp_path, fig1):
        from repro.io.jsonio import graph_to_dict
        from repro.service.client import ServiceClient

        with AnalysisServer(tmp_path) as server:
            client = ServiceClient(server.url)
            job = client.submit_job(
                graph_to_dict(fig1), kind="dse", observe="c", max_probes=5
            )
            parked = client.wait(job["id"])
            assert parked["state"] == "partial"
            assert parked["result"]["stats"]["evaluations"] == 5

        with AnalysisServer(tmp_path) as server:
            client = ServiceClient(server.url)
            finished = client.wait(job["id"])
            assert finished["state"] == "done"
            assert finished["result"]["stats"]["evaluations"] == 9
            assert finished["result"]["stats"]["cache_hits"] >= 5
            assert finished["legs"] == 2
            direct = explore_design_space(fig1, "c")
            assert (
                DesignSpaceResult.from_dict(finished["result"]).front == direct.front
            )

    def test_stop_is_idempotent(self, tmp_path):
        server = AnalysisServer(tmp_path).start()
        server.stop()
        server.stop()  # second stop must be a no-op
