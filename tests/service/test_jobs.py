"""Unit tests for the job manager: queueing, execution, cancellation."""

import json
import threading
import time

import pytest

from repro.buffers.explorer import DesignSpaceResult, explore_design_space
from repro.exceptions import ServiceError
from repro.service.jobs import JOB_KINDS, Job, JobManager, JobSpec
from repro.service.registry import GraphRegistry


def wait_for(predicate, timeout=20.0, step=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(step)
    raise AssertionError("condition not reached within timeout")


def make_manager(fig1, **kwargs):
    registry = GraphRegistry()
    fingerprint, _ = registry.add(fig1)
    manager = JobManager(registry, **kwargs)
    return manager, fingerprint


class Gate:
    """Blocks the (single) worker inside its first probe until opened."""

    def __init__(self, manager):
        self.open = threading.Event()
        self.entered = threading.Event()
        manager.probe_callback = self._on_event

    def _on_event(self, job, event):
        if event.name == "probe_start" and not self.open.is_set():
            self.entered.set()
            self.open.wait(timeout=20.0)


class TestSubmission:
    def test_dse_job_matches_direct_exploration(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            job = manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            wait_for(lambda: job.state == "done")
            direct = explore_design_space(fig1, "c")
            served = DesignSpaceResult.from_dict(job.result)
            assert served.front == direct.front
            assert job.result["stats"]["evaluations"] == direct.stats.evaluations == 9
        finally:
            manager.drain()

    def test_throughput_job(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            job = manager.submit(
                JobSpec(
                    kind="throughput",
                    fingerprint=fingerprint,
                    observe="c",
                    params={"capacities": {"alpha": 4, "beta": 2}},
                )
            )
            wait_for(lambda: job.state == "done")
            assert job.result["throughput"] == "1/7"
            assert not job.result["deadlocked"]
        finally:
            manager.drain()

    def test_minimal_distribution_job(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            job = manager.submit(
                JobSpec(
                    kind="minimal-distribution",
                    fingerprint=fingerprint,
                    observe="c",
                    params={"throughput": "1/5"},
                )
            )
            wait_for(lambda: job.state == "done")
            assert job.result["found"]
            assert job.result["size"] == 9
        finally:
            manager.drain()

    def test_unknown_kind_rejected(self, fig1):
        with pytest.raises(ServiceError, match="unknown job kind"):
            JobSpec(kind="mystery", fingerprint="f", observe="c")
        assert "mystery" not in JOB_KINDS

    def test_unknown_graph_is_404(self, fig1):
        manager, _ = make_manager(fig1)
        try:
            with pytest.raises(ServiceError) as caught:
                manager.submit(JobSpec(kind="dse", fingerprint="nope", observe="c"))
            assert caught.value.status == 404
        finally:
            manager.drain()

    def test_failed_job_carries_error(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            job = manager.submit(
                JobSpec(kind="throughput", fingerprint=fingerprint, observe="c", params={})
            )
            wait_for(lambda: job.state == "failed")
            assert "capacities" in job.error
        finally:
            manager.drain()


class TestQueueDiscipline:
    def test_priority_orders_execution(self, fig1):
        manager, fingerprint = make_manager(fig1)
        gate = Gate(manager)
        try:
            blocker = manager.submit(
                JobSpec(kind="dse", fingerprint=fingerprint, observe="c")
            )
            gate.entered.wait(timeout=20.0)
            low = manager.submit(
                JobSpec(kind="dse", fingerprint=fingerprint, observe="c", priority=5)
            )
            high = manager.submit(
                JobSpec(kind="dse", fingerprint=fingerprint, observe="c", priority=-5)
            )
            gate.open.set()
            for job in (blocker, low, high):
                wait_for(lambda job=job: job.state == "done")
            assert high.started_at < low.started_at
        finally:
            manager.drain()

    def test_queue_full_is_503(self, fig1):
        manager, fingerprint = make_manager(fig1, queue_size=1)
        gate = Gate(manager)
        try:
            manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            gate.entered.wait(timeout=20.0)  # worker busy, queue now empty
            manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            with pytest.raises(ServiceError) as caught:
                manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            assert caught.value.status == 503
            assert "queue is full" in str(caught.value)
        finally:
            gate.open.set()
            manager.drain()

    def test_states_count_covers_every_state(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            job = manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            wait_for(lambda: job.state == "done")
            counts = manager.states_count()
            assert counts["done"] == 1
            assert set(counts) == {"queued", "running", "done", "partial", "failed", "cancelled"}
        finally:
            manager.drain()


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self, fig1):
        manager, fingerprint = make_manager(fig1)
        gate = Gate(manager)
        try:
            manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            gate.entered.wait(timeout=20.0)
            queued = manager.submit(
                JobSpec(kind="dse", fingerprint=fingerprint, observe="c")
            )
            manager.cancel(queued.id)
            assert queued.state == "cancelled"
            assert manager.queue_depth == 0
        finally:
            gate.open.set()
            manager.drain()

    def test_cancel_running_dse_keeps_partial_result(self, fig1):
        manager, fingerprint = make_manager(fig1)
        cancelled_from = []

        def cancel_after_first_probe(job, event):
            if event.name == "probe_finish" and not cancelled_from:
                cancelled_from.append(event.name)
                manager.cancel(job.id)

        manager.probe_callback = cancel_after_first_probe
        try:
            job = manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            wait_for(lambda: job.state == "cancelled")
            assert job.cancel_requested
            assert job.result is not None
            partial = DesignSpaceResult.from_dict(job.result)
            assert not partial.complete
            assert partial.exhausted == "cancelled"
            assert job.result["stats"]["evaluations"] < 9
        finally:
            manager.drain()

    def test_cancel_terminal_job_is_409(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            job = manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            wait_for(lambda: job.state == "done")
            with pytest.raises(ServiceError) as caught:
                manager.cancel(job.id)
            assert caught.value.status == 409
        finally:
            manager.drain()

    def test_unknown_job_is_404(self, fig1):
        manager, _ = make_manager(fig1)
        try:
            with pytest.raises(ServiceError) as caught:
                manager.get("absent")
            assert caught.value.status == 404
        finally:
            manager.drain()


class TestBudgets:
    def test_probe_budget_yields_partial_with_checkpointless_result(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            job = manager.submit(
                JobSpec(kind="dse", fingerprint=fingerprint, observe="c", max_probes=3)
            )
            wait_for(lambda: job.state == "partial")
            assert job.exhausted == "probes"
            partial = DesignSpaceResult.from_dict(job.result)
            assert not partial.complete
            assert job.result["stats"]["evaluations"] <= 3
        finally:
            manager.drain()


class TestMemoSharing:
    def test_second_identical_job_pays_zero_evaluations(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            first = manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            wait_for(lambda: first.state == "done")
            assert first.result["stats"]["evaluations"] == 9

            second = manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            wait_for(lambda: second.state == "done")
            assert second.result["stats"]["evaluations"] == 0
            assert second.result["stats"]["cache_hits"] >= 9
            assert second.result["pareto_front"] == first.result["pareto_front"]
        finally:
            manager.drain()

    def test_dse_warms_the_bank_for_throughput_queries(self, fig1):
        manager, fingerprint = make_manager(fig1)
        try:
            dse = manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
            wait_for(lambda: dse.state == "done")
            before = dict(manager.telemetry.counters)

            probe = manager.submit(
                JobSpec(
                    kind="throughput",
                    fingerprint=fingerprint,
                    observe="c",
                    params={"capacities": {"alpha": 4, "beta": 2}},
                )
            )
            wait_for(lambda: probe.state == "done")
            after = manager.telemetry.counters
            assert probe.result["throughput"] == "1/7"
            # served straight from the shared memo bank: no new probe ran
            assert after.get("probe_start", 0) == before.get("probe_start", 0)
            assert after.get("cache_hit", 0) == before.get("cache_hit", 0) + 1
        finally:
            manager.drain()


class TestDurability:
    def test_jsonl_store_replays_on_restart(self, tmp_path, fig1):
        registry = GraphRegistry(tmp_path)
        fingerprint, _ = registry.add(fig1)
        manager = JobManager(registry, tmp_path)
        job = manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
        wait_for(lambda: job.state == "done")
        manager.drain()

        lines = (tmp_path / "jobs.jsonl").read_text().strip().splitlines()
        assert len(lines) >= 3  # queued, running, done
        assert json.loads(lines[-1])["state"] == "done"

        reborn = JobManager(GraphRegistry(tmp_path), tmp_path)
        try:
            recovered = reborn.get(job.id)
            assert recovered.state == "done"  # terminal jobs are not re-run
            assert recovered.result == job.result
        finally:
            reborn.drain()

    def test_hand_written_queued_record_is_executed(self, tmp_path, fig1):
        registry = GraphRegistry(tmp_path)
        fingerprint, _ = registry.add(fig1)
        record = Job(
            JobSpec(kind="dse", fingerprint=fingerprint, observe="c"), job_id="abc123"
        ).to_dict()
        (tmp_path / "jobs.jsonl").write_text(json.dumps(record) + "\n")

        manager = JobManager(GraphRegistry(tmp_path), tmp_path)
        try:
            job = manager.get("abc123")
            wait_for(lambda: job.state == "done")
            assert job.result["stats"]["evaluations"] == 9
        finally:
            manager.drain()

    def test_submit_after_drain_is_503(self, fig1):
        manager, fingerprint = make_manager(fig1)
        manager.drain()
        with pytest.raises(ServiceError) as caught:
            manager.submit(JobSpec(kind="dse", fingerprint=fingerprint, observe="c"))
        assert caught.value.status == 503
