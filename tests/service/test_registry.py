"""Unit tests for the content-addressed graph registry and memo banks."""

import pytest

from repro.buffers.evalcache import EvaluationService
from repro.exceptions import ServiceError
from repro.graph.builder import GraphBuilder
from repro.io.jsonio import graph_fingerprint, graph_to_dict
from repro.service.registry import GraphRegistry, MemoBank


def renamed_fig1():
    return (
        GraphBuilder("someone-elses-name")
        .actor("a", 1)
        .actor("b", 2)
        .actor("c", 2)
        .channel("a", "b", 2, 3, name="alpha")
        .channel("b", "c", 1, 2, name="beta")
        .build()
    )


class TestGraphRegistry:
    def test_add_returns_fingerprint_and_known_flag(self, fig1):
        registry = GraphRegistry()
        fingerprint, known = registry.add(fig1)
        assert fingerprint == graph_fingerprint(fig1)
        assert not known
        again, known = registry.add(fig1)
        assert again == fingerprint and known

    def test_identical_graphs_share_one_entry(self, fig1):
        registry = GraphRegistry()
        fingerprint, _ = registry.add(fig1)
        other, known = registry.add(renamed_fig1())
        assert other == fingerprint and known
        assert len(registry) == 1
        # the first-submitted graph is the canonical entry
        assert registry.get(fingerprint).name == fig1.name

    def test_accepts_json_documents(self, fig1):
        registry = GraphRegistry()
        fingerprint, _ = registry.add(graph_to_dict(fig1))
        assert registry.get(fingerprint).channel_names == fig1.channel_names

    def test_unknown_fingerprint_is_404(self):
        registry = GraphRegistry()
        with pytest.raises(ServiceError, match="unknown graph") as caught:
            registry.get("deadbeef")
        assert caught.value.status == 404

    def test_persistence_survives_restart(self, tmp_path, fig1):
        fingerprint, _ = GraphRegistry(tmp_path).add(fig1)
        reloaded = GraphRegistry(tmp_path)
        assert reloaded.fingerprints() == [fingerprint]
        assert reloaded.get(fingerprint).actor_names == fig1.actor_names

    def test_bank_is_per_graph_and_observe(self, fig1):
        registry = GraphRegistry()
        fingerprint, _ = registry.add(fig1)
        bank_c = registry.bank(fingerprint, "c")
        assert registry.bank(fingerprint, "c") is bank_c
        assert registry.bank(fingerprint, "b") is not bank_c


class TestMemoBank:
    def evaluate_everything(self, fig1, distributions):
        service = EvaluationService(fig1, "c")
        for distribution in distributions:
            service.evaluate_blocking(distribution)
        return service

    def test_absorb_then_snapshot_roundtrips_records(self, fig1):
        from repro.buffers.distribution import StorageDistribution

        service = self.evaluate_everything(
            fig1, [StorageDistribution({"alpha": 4, "beta": 2})]
        )
        bank = MemoBank()
        bank.absorb(service.export_state())
        assert len(bank) == 1
        snapshot = bank.snapshot()
        assert "stats" not in snapshot  # restoring must not inflate counters
        restored = EvaluationService(fig1, "c")
        restored.restore_state(snapshot)
        assert restored.cache_size == 1
        assert restored.stats.evaluations == 0

    def test_full_records_never_replaced_by_thin_ones(self):
        bank = MemoBank()
        full = {"caps": [4, 2], "throughput": "1/7", "states": 9,
                "blocked": ["alpha"], "deficits": {"alpha": 1}}
        thin = {"caps": [4, 2], "throughput": "1/7", "states": 0,
                "blocked": None, "deficits": None}
        bank.absorb({"memo": [full]})
        bank.absorb({"memo": [thin]})
        (entry,) = bank.snapshot()["memo"]
        assert entry["blocked"] == ["alpha"]

    def test_thin_records_upgraded_by_full_ones(self):
        bank = MemoBank()
        thin = {"caps": [4, 2], "throughput": "1/7", "states": 0,
                "blocked": None, "deficits": None}
        full = dict(thin, blocked=["alpha"], deficits={"alpha": 1})
        bank.absorb({"memo": [thin]})
        bank.absorb({"memo": [full]})
        (entry,) = bank.snapshot()["memo"]
        assert entry["blocked"] == ["alpha"]

    def test_ceiling_kept_once_established(self):
        bank = MemoBank()
        bank.absorb({"memo": [], "ceiling": "1/4"})
        bank.absorb({"memo": []})  # a later job without a ceiling
        assert bank.snapshot()["ceiling"] == "1/4"
