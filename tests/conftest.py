"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.gallery import (
    fig1_example,
    fig6_example,
    h263_decoder,
    modem,
    sample_rate_converter,
    satellite_receiver,
)


@pytest.fixture
def fig1():
    """The paper's running example (Fig. 1)."""
    return fig1_example()


@pytest.fixture
def fig6():
    """The non-unique-minimal-distributions graph (Fig. 6)."""
    return fig6_example()


@pytest.fixture
def modem_graph():
    return modem()


@pytest.fixture
def samplerate_graph():
    return sample_rate_converter()


@pytest.fixture
def satellite_graph():
    return satellite_receiver()


@pytest.fixture
def h263_small():
    """A scaled-down H.263 decoder for fast tests."""
    return h263_decoder(blocks=9)


@pytest.fixture
def rng():
    """A deterministically seeded random generator."""
    return random.Random(20060724)
