"""Unit tests for repro.graph.builder."""

import pytest

from repro.exceptions import GraphError, ValidationError
from repro.graph.builder import GraphBuilder


class TestBuilder:
    def test_fluent_chain_builds_fig1(self):
        graph = (
            GraphBuilder("example")
            .actor("a", 1)
            .actor("b", 2)
            .actor("c", 2)
            .channel("a", "b", 2, 3, name="alpha")
            .channel("b", "c", 1, 2, name="beta")
            .build()
        )
        assert graph.num_actors == 3
        assert graph.channel("alpha").consumption == 3

    def test_actors_mapping(self):
        graph = GraphBuilder().actors({"x": 1, "y": 2}).channel("x", "y").build()
        assert graph.actor("y").execution_time == 2
        assert graph.channel_names == ["ch0"]

    def test_chain_helper(self):
        graph = GraphBuilder().actors({"a": 1, "b": 1, "c": 1}).chain("a", "b", "c").build()
        assert graph.num_channels == 2
        assert [c.name for c in graph.outgoing("a")] == ["ch0"]

    def test_chain_needs_two_actors(self):
        with pytest.raises(GraphError, match="two actors"):
            GraphBuilder().actor("a").chain("a")

    def test_self_loop_helper(self):
        graph = GraphBuilder().actor("a").self_loop("a", tokens=2, name="state").build()
        channel = graph.channel("state")
        assert channel.is_self_loop
        assert channel.initial_tokens == 2

    def test_builder_single_use(self):
        builder = GraphBuilder().actor("a")
        builder.build()
        with pytest.raises(GraphError, match="already produced"):
            builder.actor("b")
        with pytest.raises(GraphError, match="already produced"):
            builder.build()

    def test_build_validates_by_default(self):
        with pytest.raises(ValidationError, match="no actors"):
            GraphBuilder().build()

    def test_build_can_skip_validation(self):
        graph = GraphBuilder().build(validate=False)
        assert graph.num_actors == 0
