"""Unit tests for repro.graph.properties."""

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import SDFGraph
from repro.graph import properties as props


@pytest.fixture
def cyclic():
    return (
        GraphBuilder("cyclic")
        .actors({"a": 1, "b": 1, "c": 1})
        .channel("a", "b")
        .channel("b", "c")
        .channel("c", "a", initial_tokens=2)
        .build()
    )


class TestConnectivity:
    def test_chain_connected(self, fig1):
        assert props.is_weakly_connected(fig1)

    def test_disconnected(self):
        graph = GraphBuilder().actors({"a": 1, "b": 1}).build()
        assert not props.is_weakly_connected(graph)
        components = props.weakly_connected_components(graph)
        assert sorted(map(sorted, components)) == [["a"], ["b"]]

    def test_single_actor_connected(self):
        graph = GraphBuilder().actor("a").build()
        assert props.is_weakly_connected(graph)

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            props.is_weakly_connected(SDFGraph("empty"))


class TestCycles:
    def test_acyclic_chain(self, fig1):
        assert props.is_acyclic(fig1)
        assert props.simple_cycles(fig1) == []

    def test_cycle_detected(self, cyclic):
        assert not props.is_acyclic(cyclic)
        cycles = props.simple_cycles(cyclic)
        assert len(cycles) == 1
        assert set(cycles[0]) == {"a", "b", "c"}

    def test_tokens_break_dependency_cycle(self, cyclic):
        assert props.is_acyclic(cyclic, ignore_initial_tokens=True)
        assert not props.has_token_free_cycle(cyclic)

    def test_token_free_cycle(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b")
            .channel("b", "a")
            .build()
        )
        assert props.has_token_free_cycle(graph)


class TestTopology:
    def test_sources_and_sinks(self, fig1):
        assert props.source_actors(fig1) == ["a"]
        assert props.sink_actors(fig1) == ["c"]

    def test_topological_order_respects_edges(self, fig1):
        order = props.topological_order(fig1)
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topological_order_through_tokens(self, cyclic):
        order = props.topological_order(cyclic)
        assert order.index("a") < order.index("b")

    def test_topological_order_fails_on_token_free_cycle(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b")
            .channel("b", "a")
            .build()
        )
        with pytest.raises(GraphError, match="cycle without initial tokens"):
            props.topological_order(graph)
