"""Unit tests for repro.graph.actor."""

import pytest

from repro.exceptions import GraphError
from repro.graph.actor import Actor
from repro.graph.port import Port, PortDirection


class TestActorConstruction:
    def test_defaults(self):
        actor = Actor("a")
        assert actor.execution_time == 1
        assert actor.ports == {}

    def test_zero_execution_time_allowed(self):
        assert Actor("a", 0).execution_time == 0

    def test_negative_execution_time_rejected(self):
        with pytest.raises(GraphError, match=">= 0"):
            Actor("a", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError, match="non-empty"):
            Actor("")

    def test_float_execution_time_rejected(self):
        with pytest.raises(GraphError, match="int"):
            Actor("a", 2.5)

    def test_bool_execution_time_rejected(self):
        with pytest.raises(GraphError, match="int"):
            Actor("a", True)


class TestActorPorts:
    def test_add_and_classify_ports(self):
        actor = Actor("a")
        actor.add_port(Port("in0", PortDirection.INPUT, 2))
        actor.add_port(Port("out0", PortDirection.OUTPUT, 3))
        assert [p.name for p in actor.input_ports()] == ["in0"]
        assert [p.name for p in actor.output_ports()] == ["out0"]

    def test_duplicate_port_rejected(self):
        actor = Actor("a")
        actor.add_port(Port("p", PortDirection.INPUT, 1))
        with pytest.raises(GraphError, match="already has a port"):
            actor.add_port(Port("p", PortDirection.OUTPUT, 1))

    def test_fresh_port_name_skips_used(self):
        actor = Actor("a")
        actor.add_port(Port("in0", PortDirection.INPUT, 1))
        assert actor.fresh_port_name(PortDirection.INPUT) == "in1"
        assert actor.fresh_port_name(PortDirection.OUTPUT) == "out0"

    def test_copy_is_independent(self):
        actor = Actor("a", 2)
        actor.add_port(Port("in0", PortDirection.INPUT, 1))
        clone = actor.copy()
        clone.add_port(Port("in1", PortDirection.INPUT, 1))
        assert "in1" not in actor.ports
        assert clone.execution_time == 2

    def test_str(self):
        assert str(Actor("b", 5)) == "b(t=5)"
