"""Unit tests for repro.graph.graph (SDFGraph container)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.actor import Actor
from repro.graph.graph import SDFGraph, merge_graphs


@pytest.fixture
def small():
    graph = SDFGraph("small")
    graph.add_actor("a", 1)
    graph.add_actor("b", 2)
    graph.add_channel("a", "b", 2, 3, 1, name="alpha")
    return graph


class TestConstruction:
    def test_add_actor_by_name(self):
        graph = SDFGraph()
        actor = graph.add_actor("a", 4)
        assert actor.execution_time == 4

    def test_add_actor_object(self):
        graph = SDFGraph()
        graph.add_actor(Actor("a", 7))
        assert graph.actor("a").execution_time == 7

    def test_actor_object_with_execution_time_rejected(self):
        graph = SDFGraph()
        with pytest.raises(GraphError, match="actor name"):
            graph.add_actor(Actor("a"), 3)

    def test_duplicate_actor_rejected(self):
        graph = SDFGraph()
        graph.add_actor("a")
        with pytest.raises(GraphError, match="duplicate"):
            graph.add_actor("a")

    def test_channel_to_unknown_actor_rejected(self):
        graph = SDFGraph()
        graph.add_actor("a")
        with pytest.raises(GraphError, match="unknown destination"):
            graph.add_channel("a", "b", 1, 1)
        with pytest.raises(GraphError, match="unknown source"):
            graph.add_channel("b", "a", 1, 1)

    def test_duplicate_channel_name_rejected(self, small):
        with pytest.raises(GraphError, match="duplicate channel"):
            small.add_channel("a", "b", 1, 1, name="alpha")

    def test_auto_channel_names_avoid_collisions(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("a", "b", 1, 1, name="ch0")
        auto = graph.add_channel("a", "b", 1, 1)
        assert auto.name == "ch1"

    def test_channel_creates_ports(self, small):
        channel = small.channel("alpha")
        assert small.actor("a").ports[channel.source_port].rate == 2
        assert small.actor("b").ports[channel.destination_port].rate == 3

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            SDFGraph("")


class TestAccess:
    def test_lookup_errors(self, small):
        with pytest.raises(GraphError, match="unknown actor"):
            small.actor("zz")
        with pytest.raises(GraphError, match="unknown channel"):
            small.channel("zz")
        with pytest.raises(GraphError, match="unknown actor"):
            small.incoming("zz")
        with pytest.raises(GraphError, match="unknown actor"):
            small.outgoing("zz")

    def test_adjacency(self, small):
        assert [c.name for c in small.outgoing("a")] == ["alpha"]
        assert [c.name for c in small.incoming("b")] == ["alpha"]
        assert small.incoming("a") == []

    def test_indices_follow_insertion_order(self, small):
        assert small.actor_names == ["a", "b"]
        assert small.actor_index("b") == 1
        assert small.channel_index("alpha") == 0

    def test_index_of_unknown_raises(self, small):
        with pytest.raises(GraphError):
            small.actor_index("zz")
        with pytest.raises(GraphError):
            small.channel_index("zz")

    def test_counts_and_iteration(self, small):
        assert small.num_actors == 2
        assert small.num_channels == 1
        assert len(small) == 2
        assert {actor.name for actor in small} == {"a", "b"}
        assert "a" in small and "alpha" in small and "zz" not in small


class TestDerivatives:
    def test_copy_is_deep(self, small):
        clone = small.copy()
        clone.add_actor("c")
        clone.add_channel("b", "c", 1, 1)
        assert small.num_actors == 2
        assert small.num_channels == 1
        assert clone.channel("alpha").initial_tokens == 1

    def test_with_execution_times(self, small):
        fast = small.with_execution_times({"b": 9})
        assert fast.actor("b").execution_time == 9
        assert small.actor("b").execution_time == 2
        # Ports survive the retiming.
        assert fast.actor("b").ports

    def test_with_initial_tokens(self, small):
        tokened = small.with_initial_tokens({"alpha": 5})
        assert tokened.channel("alpha").initial_tokens == 5
        assert small.channel("alpha").initial_tokens == 1

    def test_to_networkx(self, small):
        nxg = small.to_networkx()
        assert set(nxg.nodes) == {"a", "b"}
        assert nxg["a"]["b"]["alpha"]["production"] == 2

    def test_describe_mentions_everything(self, small):
        text = small.describe()
        assert "a(t=1)" in text
        assert "alpha" in text


class TestMerge:
    def test_merge_prefixes_names(self, small):
        other = small.copy("other")
        merged = merge_graphs([small, other])
        assert merged.num_actors == 4
        assert "small.a" in merged.actors
        assert "other.alpha" in merged.channels
        assert merged.channel("small.alpha").initial_tokens == 1
