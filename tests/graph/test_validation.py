"""Unit tests for repro.graph.validation."""

import pytest

from repro.exceptions import ValidationError
from repro.graph.builder import GraphBuilder
from repro.graph.channel import Channel
from repro.graph.graph import SDFGraph
from repro.graph.validation import validate_graph


def test_valid_graph_passes(fig1):
    validate_graph(fig1)


def test_empty_graph_rejected():
    with pytest.raises(ValidationError, match="no actors"):
        validate_graph(SDFGraph("empty"))


def test_actor_only_graph_passes():
    graph = SDFGraph()
    graph.add_actor("a")
    validate_graph(graph)


def _corrupt(graph: SDFGraph, **overrides) -> SDFGraph:
    """Replace channel 'alpha' with a tampered copy (bypassing add_channel)."""
    original = graph.channel("alpha")
    fields = {
        "name": original.name,
        "source": original.source,
        "destination": original.destination,
        "production": original.production,
        "consumption": original.consumption,
        "initial_tokens": original.initial_tokens,
        "source_port": original.source_port,
        "destination_port": original.destination_port,
    }
    fields.update(overrides)
    graph._channels["alpha"] = Channel(**fields)
    return graph


def test_dangling_source_port_detected(fig1):
    graph = _corrupt(fig1, source_port="nope")
    with pytest.raises(ValidationError, match="no port"):
        validate_graph(graph)


def test_rate_mismatch_detected(fig1):
    graph = _corrupt(fig1, production=9)
    with pytest.raises(ValidationError, match="rate mismatch"):
        validate_graph(graph)


def test_wrong_direction_detected(fig1):
    # Point the channel's source at the *input* port of actor b.
    beta = fig1.channel("beta")
    graph = _corrupt(
        fig1,
        source="b",
        source_port=fig1.channel("alpha").destination_port,
        production=3,
    )
    del beta
    with pytest.raises(ValidationError, match="not an output"):
        validate_graph(graph)


def test_shared_port_detected():
    graph = GraphBuilder().actors({"a": 1, "b": 1}).channel("a", "b", name="alpha").build()
    original = graph.channel("alpha")
    clone = Channel(
        "alpha2",
        original.source,
        original.destination,
        original.production,
        original.consumption,
        source_port=original.source_port,
        destination_port=original.destination_port,
    )
    graph._channels["alpha2"] = clone
    with pytest.raises(ValidationError, match="more than one channel"):
        validate_graph(graph)
