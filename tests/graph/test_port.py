"""Unit tests for repro.graph.port."""

import pytest

from repro.exceptions import GraphError
from repro.graph.port import Port, PortDirection


class TestPortConstruction:
    def test_valid_input_port(self):
        port = Port("in0", PortDirection.INPUT, 3)
        assert port.name == "in0"
        assert port.rate == 3
        assert port.is_input
        assert not port.is_output

    def test_valid_output_port(self):
        port = Port("out0", PortDirection.OUTPUT, 1)
        assert port.is_output
        assert not port.is_input

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError, match="non-empty"):
            Port("", PortDirection.INPUT, 1)

    def test_zero_rate_rejected(self):
        with pytest.raises(GraphError, match="positive"):
            Port("p", PortDirection.INPUT, 0)

    def test_negative_rate_rejected(self):
        with pytest.raises(GraphError, match="positive"):
            Port("p", PortDirection.OUTPUT, -2)

    def test_non_integer_rate_rejected(self):
        with pytest.raises(GraphError, match="int"):
            Port("p", PortDirection.INPUT, 1.5)

    def test_bool_rate_rejected(self):
        with pytest.raises(GraphError, match="int"):
            Port("p", PortDirection.INPUT, True)


class TestPortValueSemantics:
    def test_ports_are_immutable(self):
        port = Port("p", PortDirection.INPUT, 2)
        with pytest.raises(AttributeError):
            port.rate = 3

    def test_equality(self):
        assert Port("p", PortDirection.INPUT, 2) == Port("p", PortDirection.INPUT, 2)
        assert Port("p", PortDirection.INPUT, 2) != Port("p", PortDirection.OUTPUT, 2)

    def test_str_mentions_direction_and_rate(self):
        assert str(Port("p", PortDirection.OUTPUT, 7)) == "p[out,7]"

    def test_direction_str(self):
        assert str(PortDirection.INPUT) == "in"
        assert str(PortDirection.OUTPUT) == "out"
