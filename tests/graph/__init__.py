"""Test package."""
