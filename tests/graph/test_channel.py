"""Unit tests for repro.graph.channel."""

import pytest

from repro.exceptions import GraphError
from repro.graph.channel import Channel


class TestChannelConstruction:
    def test_valid(self):
        channel = Channel("alpha", "a", "b", 2, 3, 1)
        assert channel.production == 2
        assert channel.consumption == 3
        assert channel.initial_tokens == 1

    def test_defaults(self):
        channel = Channel("c", "a", "b", 1, 1)
        assert channel.initial_tokens == 0

    def test_zero_production_rejected(self):
        with pytest.raises(GraphError, match="production"):
            Channel("c", "a", "b", 0, 1)

    def test_zero_consumption_rejected(self):
        with pytest.raises(GraphError, match="consumption"):
            Channel("c", "a", "b", 1, 0)

    def test_negative_tokens_rejected(self):
        with pytest.raises(GraphError, match="initial tokens"):
            Channel("c", "a", "b", 1, 1, -1)

    def test_non_integer_tokens_rejected(self):
        with pytest.raises(GraphError, match="initial tokens"):
            Channel("c", "a", "b", 1, 1, 0.5)

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError, match="non-empty"):
            Channel("", "a", "b", 1, 1)


class TestChannelProperties:
    def test_self_loop_detection(self):
        assert Channel("c", "a", "a", 1, 1, 1).is_self_loop
        assert not Channel("c", "a", "b", 1, 1).is_self_loop

    def test_str_shows_rates_and_tokens(self):
        text = str(Channel("alpha", "a", "b", 2, 3, 4))
        assert "a -2-> 3- b" in text
        assert "4 tok" in text

    def test_str_omits_zero_tokens(self):
        assert "tok" not in str(Channel("alpha", "a", "b", 2, 3))

    def test_frozen(self):
        channel = Channel("c", "a", "b", 1, 1)
        with pytest.raises(AttributeError):
            channel.production = 2
