"""Unit tests for the quota'd iteration-makespan simulation."""

from fractions import Fraction

import pytest

from repro.engine.executor import Executor
from repro.graph.graph import SDFGraph
from repro.sadf.makespan import iteration_makespan


def chain(exec_a=1, exec_b=1, production=1, consumption=1):
    graph = SDFGraph("chain")
    graph.add_actor("a", exec_a)
    graph.add_actor("b", exec_b)
    graph.add_channel("a", "b", production, consumption, name="c")
    return graph


class TestMakespan:
    def test_homogeneous_chain(self):
        # a fires (1), then b fires (1): one iteration takes 2.
        result = iteration_makespan(chain(), {"c": 1})
        assert result.time == 2
        assert not result.deadlocked

    def test_multirate_iteration(self):
        # a produces 2 per firing, b consumes 1: repetitions a=1, b=2.
        # cap 2: a(1) then b twice sequentially (1 each) -> 3.
        result = iteration_makespan(chain(production=2), {"c": 2})
        assert result.time == 3

    def test_small_capacity_serialises(self):
        # cap 1 with production 2 deadlocks a outright.
        result = iteration_makespan(chain(production=2), {"c": 1})
        assert result.deadlocked and result.time is None
        assert "c" in result.space_blocked
        assert result.space_deficits["c"] == 1  # needs exactly one more slot

    def test_space_blocking_recorded_without_deadlock(self):
        # repetitions a=2, b=1 (a produces 1, b consumes 2); cap 1 forces
        # the two a-firings to serialise against b's claim... cap 2 frees it.
        graph = chain(consumption=2)
        blocked = iteration_makespan(graph, {"c": 1})
        assert blocked.deadlocked  # b can never claim 2 slots under cap 1
        fine = iteration_makespan(graph, {"c": 2})
        assert fine.time is not None and not fine.space_blocked

    def test_unbounded_channels(self):
        # Missing capacities mean unbounded storage (the executor's
        # convention), so only dependencies constrain the makespan.
        result = iteration_makespan(chain(production=2), {})
        assert result.time == 3 and not result.space_blocked

    def test_zero_execution_time_cascades(self):
        graph = SDFGraph("zeros")
        graph.add_actor("a", 0)
        graph.add_actor("b", 0)
        graph.add_channel("a", "b", 1, 1, name="c")
        result = iteration_makespan(graph, {"c": 1})
        assert result.time == 0

    def test_initial_tokens_respected(self):
        graph = SDFGraph("cycle")
        graph.add_actor("a", 2)
        graph.add_actor("b", 3)
        graph.add_channel("a", "b", 1, 1, name="fwd")
        graph.add_channel("b", "a", 1, 1, 1, name="back")
        # a waits for the back token (present initially), fires (2),
        # then b (3): makespan 5.
        result = iteration_makespan(graph, {"fwd": 1, "back": 1})
        assert result.time == 5

    def test_makespan_bounds_steady_state(self, fig1):
        # One barriered iteration can never beat the pipelined rate:
        # thr >= repetitions(observe) / makespan at the same sizing.
        capacities = {"alpha": 4, "beta": 2}
        result = iteration_makespan(fig1, capacities)
        throughput = Executor(fig1, capacities, "c").run().throughput
        from repro.analysis.repetitions import repetition_vector

        firings = repetition_vector(fig1)["c"]
        assert result.time is not None
        assert throughput >= Fraction(firings, result.time)

    def test_explicit_repetitions_quota(self):
        # Doubling the quota doubles the (serialised) makespan of the
        # homogeneous chain minus the pipelined overlap.
        graph = chain()
        single = iteration_makespan(graph, {"c": 1})
        double = iteration_makespan(graph, {"c": 1}, {"a": 2, "b": 2})
        assert single.time == 2
        assert double.time == 4  # cap 1 serialises a-b-a-b completely
