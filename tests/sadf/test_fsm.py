"""Unit tests for the scenario FSM and its cycle enumeration."""

import pytest

from repro.exceptions import GraphError
from repro.sadf.fsm import MAX_ENUMERATED_CYCLES, ScenarioFSM, ScenarioTransition


class TestConstruction:
    def test_transition_validation(self):
        with pytest.raises(GraphError, match="non-empty"):
            ScenarioTransition("", "b")
        with pytest.raises(GraphError, match=">= 0"):
            ScenarioTransition("a", "b", delay=-1)
        with pytest.raises(GraphError, match="must be int"):
            ScenarioTransition("a", "b", delay=True)

    def test_one_edge_per_ordered_pair(self):
        fsm = ScenarioFSM("a")
        fsm.add_transition("a", "b", 1)
        with pytest.raises(GraphError, match="duplicate transition"):
            fsm.add_transition("a", "b", 2)
        fsm.add_transition("b", "a")  # the reverse direction is distinct

    def test_single(self):
        fsm = ScenarioFSM.single("s")
        assert fsm.states == ("s",)
        assert fsm.has_zero_delay_self_loop("s")
        assert fsm.is_fully_connected()

    def test_complete(self):
        fsm = ScenarioFSM.complete(("a", "b", "c"), delay=2)
        assert len(fsm.transitions) == 9
        assert fsm.is_fully_connected()
        assert fsm.max_delay == 2
        assert not fsm.has_zero_delay_self_loop("a")


class TestStructure:
    def test_reachable_ignores_disconnected(self):
        fsm = ScenarioFSM("a")
        fsm.add_transition("a", "b")
        fsm.add_transition("c", "d")  # not reachable from a
        assert fsm.reachable() == ("a", "b")
        assert not fsm.is_fully_connected()

    def test_successors_and_lookup(self):
        fsm = ScenarioFSM("a")
        fsm.add_transition("a", "b", 3)
        fsm.add_transition("a", "a")
        assert [t.target for t in fsm.successors("a")] == ["b", "a"]
        assert fsm.transition("a", "b").delay == 3
        assert fsm.transition("b", "a") is None


class TestSimpleCycles:
    def test_zero_delay_self_loops_excluded(self):
        fsm = ScenarioFSM.single("s")
        cycles, truncated = fsm.simple_cycles()
        assert cycles == () and not truncated

    def test_delayed_self_loop_is_a_cycle(self):
        fsm = ScenarioFSM("s", [("s", "s", 4)])
        cycles, truncated = fsm.simple_cycles()
        assert len(cycles) == 1 and not truncated
        assert cycles[0][0].delay == 4

    def test_two_state_tour_found_once(self):
        fsm = ScenarioFSM("a")
        fsm.add_transition("a", "a")
        fsm.add_transition("a", "b", 1)
        fsm.add_transition("b", "b")
        fsm.add_transition("b", "a", 2)
        cycles, truncated = fsm.simple_cycles()
        assert not truncated
        assert len(cycles) == 1  # a->b->a, discovered at its lowest root only
        states = tuple(t.source for t in cycles[0])
        assert set(states) == {"a", "b"}
        assert sum(t.delay for t in cycles[0]) == 3

    def test_unreachable_cycles_ignored(self):
        fsm = ScenarioFSM("a", [("a", "a", 1), ("x", "y", 0), ("y", "x", 0)])
        cycles, _ = fsm.simple_cycles()
        assert len(cycles) == 1

    def test_truncation_flag(self):
        # A complete 5-state FSM with delays has far more than 8
        # simple cycles.
        fsm = ScenarioFSM.complete(tuple("abcde"), delay=1)
        cycles, truncated = fsm.simple_cycles(limit=8)
        assert truncated and len(cycles) == 8
        full, truncated_full = fsm.simple_cycles(limit=10**6)
        assert not truncated_full and len(full) > MAX_ENUMERATED_CYCLES

    def test_describe(self):
        fsm = ScenarioFSM("a", [("a", "b", 2)])
        assert fsm.describe() == "initial=a; a->b(2)"
