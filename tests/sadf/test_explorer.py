"""Unit tests for the all-scenario design-space exploration."""

from fractions import Fraction

import pytest

from repro.buffers.explorer import explore_design_space as explore_sdf
from repro.exceptions import CheckpointError, ExplorationError
from repro.gallery import h263_frames
from repro.runtime.budget import Budget
from repro.runtime.config import ExplorationConfig
from repro.sadf.explorer import (
    SADF_CHECKPOINT_FORMAT,
    SADF_STRATEGY,
    explore_design_space,
    max_worst_case_throughput,
    minimal_sadf_distribution_for_throughput,
)
from repro.sadf.fsm import ScenarioFSM
from repro.sadf.graph import SADFGraph, from_sdf
from repro.sadf.throughput import worst_case_throughput


def two_mode() -> SADFGraph:
    sadf = SADFGraph("toy")
    sadf.add_actor("a")
    sadf.add_actor("b")
    sadf.add_channel("a", "b", name="c")
    sadf.add_scenario("fast", execution_times={"a": 1, "b": 1})
    sadf.add_scenario("slow", execution_times={"a": 2, "b": 3})
    sadf.set_fsm(ScenarioFSM("fast", [("fast", "slow", 1), ("slow", "fast", 2)]))
    return sadf


class TestMultiScenarioSweep:
    def test_h263_frames_front(self):
        result = explore_design_space(h263_frames(), "mc")
        assert result.complete
        assert [(p.size, p.throughput) for p in result.front] == [
            (9, Fraction(1, 13)),
            (10, Fraction(1, 11)),
        ]
        assert result.max_throughput == Fraction(1, 11)
        assert result.stats.strategy == SADF_STRATEGY

    def test_front_points_reexecute_to_their_worst_case(self):
        frames = h263_frames()
        result = explore_design_space(frames, "mc")
        for point in result.front:
            fresh = worst_case_throughput(frames, point.distribution, "mc")
            assert fresh.worst_case == point.throughput

    def test_toy_front(self):
        result = explore_design_space(two_mode(), "b")
        assert result.complete
        assert [(p.size, p.throughput) for p in result.front] == [
            (1, Fraction(1, 5))
        ]

    def test_max_size_restricts(self):
        result = explore_design_space(h263_frames(), "mc", max_size=9)
        assert [(p.size, p.throughput) for p in result.front] == [
            (9, Fraction(1, 13))
        ]

    def test_strategy_rejected(self):
        with pytest.raises(ExplorationError, match="dependency"):
            explore_design_space(two_mode(), "b", strategy="exhaustive")

    def test_shared_evaluator_rejected(self):
        config = ExplorationConfig(evaluator=object())
        with pytest.raises(ExplorationError, match="evaluator"):
            explore_design_space(two_mode(), "b", config=config)

    def test_max_worst_case(self):
        assert max_worst_case_throughput(h263_frames(), "mc") == Fraction(1, 11)

    def test_minimal_distribution(self):
        point = minimal_sadf_distribution_for_throughput(
            h263_frames(), Fraction(1, 13), "mc"
        )
        assert point is not None and point.size == 9
        assert minimal_sadf_distribution_for_throughput(
            h263_frames(), Fraction(1, 2), "mc"
        ) is None
        with pytest.raises(ExplorationError, match="positive"):
            minimal_sadf_distribution_for_throughput(h263_frames(), Fraction(0), "mc")


class TestBudgetAndResume:
    def test_budget_yields_partial_with_token(self):
        config = ExplorationConfig(budget=Budget(max_probes=3))
        result = explore_design_space(h263_frames(), "mc", config=config)
        assert not result.complete
        assert result.exhausted == "probes"
        assert result.resume_token is not None
        payload = result.resume_token.payload
        assert payload["format"] == SADF_CHECKPOINT_FORMAT
        assert set(payload["scenarios"]) == {"i", "p"}

    def test_resume_reaches_full_front(self):
        config = ExplorationConfig(budget=Budget(max_probes=3))
        partial = explore_design_space(h263_frames(), "mc", config=config)
        resumed = explore_design_space(
            h263_frames(), "mc", resume=partial.resume_token
        )
        full = explore_design_space(h263_frames(), "mc")
        assert resumed.complete
        assert resumed.front.to_dicts() == full.front.to_dicts()

    def test_checkpoint_file_roundtrip(self, tmp_path):
        path = tmp_path / "sadf.ckpt.json"
        config = ExplorationConfig(budget=Budget(max_probes=3), checkpoint=path)
        partial = explore_design_space(h263_frames(), "mc", config=config)
        assert not partial.complete and path.exists()
        resumed = explore_design_space(h263_frames(), "mc", resume=str(path))
        full = explore_design_space(h263_frames(), "mc")
        assert resumed.front.to_dicts() == full.front.to_dicts()

    def test_sdf_checkpoint_rejected(self, tmp_path, fig1):
        path = tmp_path / "sdf.ckpt.json"
        explore_sdf(fig1, "c", config=ExplorationConfig(checkpoint=path))
        with pytest.raises(CheckpointError, match=SADF_CHECKPOINT_FORMAT):
            explore_design_space(h263_frames(), "mc", resume=str(path))

    def test_wrong_graph_rejected(self):
        partial = explore_design_space(
            h263_frames(), "mc",
            config=ExplorationConfig(budget=Budget(max_probes=3)),
        )
        with pytest.raises(CheckpointError, match="was written for graph"):
            explore_design_space(two_mode(), "b", resume=partial.resume_token)


class TestServiceHooks:
    def test_on_export_banks_every_scenario(self):
        exported = {}
        explore_design_space(
            h263_frames(), "mc",
            on_export=lambda name, state: exported.setdefault(name, state),
        )
        assert set(exported) == {"i", "p"}
        assert all(state["memo"] for state in exported.values())

    def test_scenario_states_warm_start(self):
        exported = {}
        cold = explore_design_space(
            h263_frames(), "mc",
            on_export=lambda name, state: exported.setdefault(name, state),
        )
        # The service plane banks memo + ceiling only (restoring a
        # job's stats would inflate the next job's counters).
        seeds = {
            name: {"ceiling": state.get("ceiling"), "memo": state["memo"]}
            for name, state in exported.items()
        }
        warm = explore_design_space(h263_frames(), "mc", scenario_states=seeds)
        assert warm.front.to_dicts() == cold.front.to_dicts()
        assert warm.stats.evaluations == 0
        assert warm.stats.cache_hits > 0

    def test_degenerate_with_hooks_still_bit_identical(self, fig1):
        exported = {}
        sadf = from_sdf(fig1)
        plain = explore_sdf(fig1, "c")
        result = explore_design_space(
            sadf, "c", on_export=lambda name, state: exported.setdefault(name, state)
        )
        assert result.front.to_dicts() == plain.front.to_dicts()
        assert set(exported) == {"default"}
        seeds = {
            name: {"ceiling": state.get("ceiling"), "memo": state["memo"]}
            for name, state in exported.items()
        }
        warm = explore_design_space(sadf, "c", scenario_states=seeds)
        assert warm.front.to_dicts() == plain.front.to_dicts()
        assert warm.stats.evaluations == 0
