"""Unit tests for the all-scenario worst-case throughput analysis."""

from fractions import Fraction

import pytest

from repro.exceptions import GraphError
from repro.sadf.fsm import ScenarioFSM
from repro.sadf.graph import SADFGraph, from_sdf
from repro.sadf.throughput import worst_case_throughput


def two_mode(fsm: ScenarioFSM | None = None) -> SADFGraph:
    sadf = SADFGraph("toy")
    sadf.add_actor("a")
    sadf.add_actor("b")
    sadf.add_channel("a", "b", name="c")
    sadf.add_scenario("fast", execution_times={"a": 1, "b": 1})
    sadf.add_scenario("slow", execution_times={"a": 2, "b": 3})
    if fsm is not None:
        sadf.set_fsm(fsm)
    return sadf


class TestWorstCase:
    def test_switching_cycle_binds(self):
        # No residence: every accepted sequence alternates fast / slow.
        fsm = ScenarioFSM("fast", [("fast", "slow", 1), ("slow", "fast", 2)])
        report = worst_case_throughput(two_mode(fsm), {"c": 3}, "b")
        # One tour: makespans 2 (fast) + 5 (slow) + delays 3, 2 firings.
        assert report.worst_case == Fraction(2, 10)
        assert report.makespans == {"fast": 2, "slow": 5}
        assert len(report.cycles) == 1
        assert report.cycles[0].firings == 2
        assert report.cycles[0].duration == 10
        assert "switching cycle" in report.critical
        assert not report.fallback

    def test_residence_beats_cycle_when_slower(self):
        # Zero-delay self-loop on slow: residing there pays the
        # pipelined steady state of the slow scenario, 1/3 with cap 1...
        fsm = ScenarioFSM(
            "fast",
            [("fast", "fast", 0), ("fast", "slow", 0), ("slow", "slow", 0),
             ("slow", "fast", 0)],
        )
        report = worst_case_throughput(two_mode(fsm), {"c": 1}, "b")
        slow_steady = report.per_scenario["slow"]
        assert report.worst_case <= slow_steady
        assert report.worst_case > 0

    def test_default_fsm_is_any_order(self):
        report = worst_case_throughput(two_mode(), {"c": 2}, "b")
        # Complete zero-delay FSM: both residences and both switching
        # directions are candidates; the worst is the slow-heavy tour.
        assert report.worst_case > 0
        assert report.per_scenario.keys() == {"fast", "slow"}

    def test_deadlock_pins_zero(self):
        sadf = SADFGraph("dead")
        sadf.add_actor("a")
        sadf.add_actor("b")
        sadf.add_channel("a", "b", name="c")
        sadf.add_scenario("wide", productions={"c": 4}, consumptions={"c": 4},
                          execution_times={"a": 1, "b": 1})
        report = worst_case_throughput(sadf, {"c": 2}, "b")
        assert report.worst_case == 0
        assert "deadlocks" in report.critical

    def test_truncation_falls_back_conservatively(self):
        fsm = ScenarioFSM("fast", [("fast", "slow", 1), ("slow", "fast", 2)])
        exact = worst_case_throughput(two_mode(fsm), {"c": 3}, "b")
        bound = worst_case_throughput(
            two_mode(fsm), {"c": 3}, "b", cycle_limit=0
        )
        assert bound.fallback
        assert bound.worst_case <= exact.worst_case
        assert bound.worst_case > 0

    def test_dead_end_fsm_flagged(self):
        # No cycle and no self-loop: only finite sequences.
        fsm = ScenarioFSM("fast", [("fast", "slow", 1)])
        report = worst_case_throughput(two_mode(fsm), {"c": 3}, "b")
        assert report.fallback
        assert report.worst_case > 0

    def test_degenerate_equals_sdf_throughput(self, fig1):
        from repro.engine.executor import Executor

        sadf = from_sdf(fig1)
        capacities = {"alpha": 4, "beta": 2}
        report = worst_case_throughput(sadf, capacities, "c")
        assert report.worst_case == Executor(fig1, capacities, "c").run().throughput
        assert report.critical == "residence in scenario 'default'"

    def test_unknown_observe(self):
        with pytest.raises(GraphError, match="no actor"):
            worst_case_throughput(two_mode(), {"c": 2}, "zz")

    def test_summary_mentions_everything(self):
        fsm = ScenarioFSM("fast", [("fast", "slow", 1), ("slow", "fast", 2)])
        text = worst_case_throughput(two_mode(fsm), {"c": 3}, "b").summary()
        assert "worst-case throughput" in text
        assert "scenario fast" in text and "scenario slow" in text
        assert "binding constraint" in text

    def test_memoised_oracles_are_used(self):
        from repro.sadf.makespan import iteration_makespan

        sadf = two_mode(ScenarioFSM("fast", [("fast", "slow", 1), ("slow", "fast", 2)]))
        calls = []

        def throughputs(name):
            calls.append(name)
            from repro.engine.executor import Executor

            return Executor(sadf.scenario_graph(name), {"c": 3}, "b").run().throughput

        def makespans(name):
            return iteration_makespan(
                sadf.scenario_graph(name), {"c": 3}, sadf.scenario_repetitions(name)
            )

        report = worst_case_throughput(
            sadf, {"c": 3}, "b", throughputs=throughputs, makespans=makespans
        )
        assert report.worst_case == Fraction(1, 5)
        assert sorted(calls) == ["fast", "slow"]
