"""Unit tests for repro.reporting.plots."""

from fractions import Fraction

from repro.buffers.distribution import StorageDistribution
from repro.buffers.pareto import ParetoFront
from repro.reporting.plots import ascii_pareto


def front():
    return ParetoFront.from_evaluations(
        {
            StorageDistribution({"a": 4, "b": 2}): Fraction(1, 7),
            StorageDistribution({"a": 6, "b": 2}): Fraction(1, 6),
            StorageDistribution({"a": 8, "b": 2}): Fraction(1, 4),
        }
    )


def grid_lines(chart):
    """The chart rows above the x axis (excludes textual labels)."""
    lines = chart.split("\n")
    axis = next(i for i, line in enumerate(lines) if "+---" in line)
    return lines[:axis]


def test_one_marker_per_point():
    chart = ascii_pareto(front())
    assert sum(line.count("o") for line in grid_lines(chart)) == 3


def test_axis_labels():
    chart = ascii_pareto(front())
    assert "1/4 -" in chart
    assert "distribution size" in chart
    lines = chart.split("\n")
    assert any(line.strip().startswith("6") and line.strip().endswith("10") for line in lines)


def test_title_included():
    assert ascii_pareto(front(), title="Fig. 5").startswith("Fig. 5")


def test_empty_front():
    chart = ascii_pareto(ParetoFront())
    assert "empty" in chart


def test_single_point_front():
    single = ParetoFront.from_evaluations(
        {StorageDistribution({"a": 4}): Fraction(1, 7)}
    )
    chart = ascii_pareto(single)
    assert sum(line.count("o") for line in grid_lines(chart)) == 1


def test_staircase_monotone():
    """Rows of later (larger) points sit above rows of earlier points."""
    chart = ascii_pareto(front(), width=40, height=10)
    rows = {}
    for row_index, line in enumerate(grid_lines(chart)):
        for col_index, char in enumerate(line):
            if char == "o":
                rows[col_index] = row_index
    columns = sorted(rows)
    heights = [rows[c] for c in columns]
    assert heights == sorted(heights, reverse=True)
