"""Test package."""
