"""Unit tests for repro.reporting.tokens."""

from repro.reporting.tokens import occupancy_series, token_table

CAPS = {"alpha": 4, "beta": 2}


def test_table_shape(fig1):
    text = token_table(fig1, CAPS, 16, "c")
    lines = text.split("\n")
    assert lines[0].split("|")[1].strip() == "time"
    assert lines[2].split("|")[1].strip() == "alpha"
    assert lines[3].split("|")[1].strip() == "beta"


def test_series_respects_capacities(fig1):
    series = occupancy_series(fig1, CAPS, 40, "c")
    assert all(0 <= value <= 4 for value in series["alpha"])
    assert all(0 <= value <= 2 for value in series["beta"])


def test_series_matches_paper_prefix(fig1):
    # Fig. 3: tokens (0,0) -> (2,0) -> (4,0) over the first instants.
    series = occupancy_series(fig1, CAPS, 3, "c")
    assert series["alpha"][:3] == [0, 2, 4]
    assert series["beta"][:3] == [0, 0, 0]


def test_periodic_extension(fig1):
    # Far beyond the explored prefix the series repeats with period 7.
    series = occupancy_series(fig1, CAPS, 40, "c")
    tail = series["alpha"][20:34]
    assert tail[:7] == tail[7:14]


def test_table_and_series_agree(fig1):
    horizon = 12
    series = occupancy_series(fig1, CAPS, horizon, "c")
    table = token_table(fig1, CAPS, horizon, "c")
    alpha_row = [cell.strip() for cell in table.split("\n")[2].split("|")[2:-1]]
    assert [int(cell) for cell in alpha_row] == series["alpha"]
