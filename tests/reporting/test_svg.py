"""Unit tests for repro.reporting.svg."""

import re

from repro.engine.executor import Executor
from repro.graph.builder import GraphBuilder
from repro.reporting.svg import schedule_to_svg


def fig1_schedule(fig1):
    return Executor(fig1, {"alpha": 4, "beta": 2}, "c", record_schedule=True).run().schedule


def test_valid_svg_shell(fig1):
    svg = schedule_to_svg(fig1_schedule(fig1))
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert svg.count("<svg") == svg.count("</svg>") == 1


def test_one_row_label_per_actor(fig1):
    svg = schedule_to_svg(fig1_schedule(fig1))
    for actor in ("a", "b", "c"):
        assert f">{actor}</text>" in svg


def test_one_rect_per_firing_within_horizon(fig1):
    schedule = fig1_schedule(fig1)
    svg = schedule_to_svg(schedule)
    # The background rect starts with '<rect width', firing rects with
    # '<rect x' — the lookahead excludes the background.
    firing_rects = len(re.findall(r"<rect(?! width)", svg))
    assert firing_rects == len(schedule.events)


def test_horizon_truncation(fig1):
    schedule = fig1_schedule(fig1)
    truncated = schedule_to_svg(schedule, until=5)
    full = schedule_to_svg(schedule)
    assert len(truncated) < len(full)


def test_title_rendered(fig1):
    svg = schedule_to_svg(fig1_schedule(fig1), title="Table 1")
    assert ">Table 1</text>" in svg


def test_zero_duration_firings_as_ticks():
    graph = GraphBuilder().actors({"z": 0, "s": 1}).channel("z", "s", name="c").build()
    result = Executor(graph, {"c": 1}, "s", record_schedule=True).run()
    svg = schedule_to_svg(result.schedule)
    assert 'width="2"' in svg
