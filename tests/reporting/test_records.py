"""Unit tests for repro.reporting.records."""

from repro.reporting.records import ExperimentRecord, render_records


def test_render_contains_fields():
    records = [
        ExperimentRecord("E-F5", "Pareto points", "3-4", "4", "yes"),
        ExperimentRecord("E-T2", "actors", "3", "3", "yes", note="exact"),
    ]
    text = render_records(records)
    assert "experiment" in text
    assert "E-F5" in text
    assert "Pareto points" in text
    assert "exact" in text


def test_rows_aligned():
    records = [ExperimentRecord("a", "b", "c", "d")]
    lines = render_records(records).split("\n")
    assert len({len(line) for line in lines}) == 1
