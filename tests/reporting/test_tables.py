"""Unit tests for repro.reporting.tables."""

from repro.buffers.explorer import explore_design_space
from repro.reporting.tables import render_table, schedule_table, schedule_for, table2, table2_row


class TestRenderTable:
    def test_alignment(self):
        text = render_table([["h1", "h2"], ["a", "bbbb"], ["cc", "d"]])
        lines = text.split("\n")
        assert len({len(line) for line in lines}) == 1  # uniform width
        assert lines[1].startswith("|--")

    def test_empty(self):
        assert render_table([]) == ""

    def test_ragged_rows_padded(self):
        text = render_table([["a", "b", "c"], ["x"]])
        lines = text.split("\n")
        assert len(lines[0]) == len(lines[2])


class TestScheduleTable:
    def test_table1_structure(self, fig1):
        schedule = schedule_for(fig1, {"alpha": 4, "beta": 2}, "c")
        text = schedule_table(schedule, 16)
        lines = text.split("\n")
        assert lines[0].startswith("| time | 1 | 2 |")
        row_a = lines[2]
        row_b = lines[3]
        row_c = lines[4]
        # a fires in steps 1 and 2 (paper's Table 1 pattern).
        assert row_a.split("|")[2].strip() == "a"
        assert row_a.split("|")[3].strip() == "a"
        # b starts at step 3 and continues at step 4.
        assert row_b.split("|")[4].strip() == "b"
        assert row_b.split("|")[5].strip() == "*"
        # c first fires at step 8.
        assert row_c.split("|")[9].strip() == "c"

    def test_actor_subset(self, fig1):
        schedule = schedule_for(fig1, {"alpha": 4, "beta": 2}, "c")
        text = schedule_table(schedule, 8, actors=["c"])
        assert "| a " not in text
        assert "| c " in text


class TestTable2:
    def test_row_contents(self, fig1):
        result = explore_design_space(fig1, "c")
        row = table2_row(fig1, "c", result)
        assert row["example"] == "example"
        assert row["actors"] == 3
        assert row["channels"] == 2
        assert row["min thr > 0"] == "1/7"
        assert row["size (min)"] == 6
        assert row["max thr"] == "1/4"
        assert row["size (max)"] == 10
        assert row["#pareto"] == 4
        assert row["max #states"] >= 2

    def test_row_runs_exploration_when_missing(self, fig1):
        row = table2_row(fig1, "c")
        assert row["#pareto"] == 4

    def test_table_layout_metrics_as_rows(self, fig1, fig6):
        rows = [table2_row(fig1, "c"), table2_row(fig6, "d")]
        text = table2(rows)
        lines = text.split("\n")
        assert "example" in lines[0] and "fig6" in lines[0]
        assert any(line.startswith("| actors") for line in lines)
        assert any(line.startswith("| #pareto") for line in lines)

    def test_empty_table(self):
        assert table2([]) == ""


class TestDeadlockedRow:
    def test_dashes_for_deadlocked_graph(self):
        from repro.graph.builder import GraphBuilder

        graph = (
            GraphBuilder("dead")
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 2)
            .channel("b", "a", 2, 1, initial_tokens=1)
            .build()
        )
        row = table2_row(graph, "b")
        assert row["min thr > 0"] == "-"
        assert row["size (max)"] == "-"
