"""Unit tests for repro.reporting.periodic."""

import pytest

from repro.exceptions import DeadlockError
from repro.reporting.periodic import (
    render_pattern,
    steady_state_pattern,
    verify_pattern_counts,
)

CAPS = {"alpha": 4, "beta": 2}


class TestSteadyStatePattern:
    def test_fig1_period_seven(self, fig1):
        pattern = steady_state_pattern(fig1, CAPS, "c")
        assert pattern.period == 7

    def test_one_iteration_per_period(self, fig1):
        pattern = steady_state_pattern(fig1, CAPS, "c")
        assert len(pattern.firings_of("a")) == 3
        assert len(pattern.firings_of("b")) == 2
        assert len(pattern.firings_of("c")) == 1
        verify_pattern_counts(fig1, pattern)

    def test_offsets_within_period(self, fig1):
        pattern = steady_state_pattern(fig1, CAPS, "c")
        for firing in pattern.firings:
            assert 0 <= firing.offset < pattern.period

    def test_durations_match_execution_times(self, fig1):
        pattern = steady_state_pattern(fig1, CAPS, "c")
        for firing in pattern.firings:
            assert firing.duration == fig1.actor(firing.actor).execution_time

    def test_deadlock_raises(self, fig1):
        with pytest.raises(DeadlockError):
            steady_state_pattern(fig1, {"alpha": 3, "beta": 2}, "c")

    def test_max_throughput_period_four(self, fig1):
        pattern = steady_state_pattern(fig1, {"alpha": 8, "beta": 4}, "c")
        assert pattern.period == 4
        verify_pattern_counts(fig1, pattern)

    def test_render(self, fig1):
        text = render_pattern(steady_state_pattern(fig1, CAPS, "c"))
        assert "every 7 steps" in text
        assert "| actor" in text

    def test_counts_on_gallery(self, samplerate_graph):
        lower_caps = {
            "c1": 1, "c2": 4, "c3": 8, "c4": 14, "c5": 5,
        }
        pattern = steady_state_pattern(samplerate_graph, lower_caps)
        verify_pattern_counts(samplerate_graph, pattern)
