"""Test package."""
