"""Unit tests for repro.baselines.greedy."""

from fractions import Fraction

import pytest

from repro.baselines.greedy import greedy_minimize
from repro.buffers.distribution import StorageDistribution
from repro.engine.executor import Executor
from repro.exceptions import ExplorationError


def test_result_meets_target(fig1):
    distribution, throughput, _evals = greedy_minimize(fig1, Fraction(1, 4), "c")
    assert throughput >= Fraction(1, 4)
    assert Executor(fig1, distribution, "c").run().throughput == throughput


def test_result_is_locally_minimal(fig1):
    distribution, _thr, _evals = greedy_minimize(fig1, Fraction(1, 4), "c")
    for name in fig1.channel_names:
        if distribution[name] > 0:
            shrunk = distribution.with_capacity(name, distribution[name] - 1)
            assert Executor(fig1, shrunk, "c").run().throughput < Fraction(1, 4)


def test_never_better_than_exact_front(fig1):
    """The heuristic upper-bounds the exact minimum (the paper's point)."""
    from repro.buffers.explorer import minimal_distribution_for_throughput

    for target in (Fraction(1, 7), Fraction(1, 6), Fraction(1, 4)):
        greedy_dist, _thr, _evals = greedy_minimize(fig1, target, "c")
        exact = minimal_distribution_for_throughput(fig1, target, "c")
        assert greedy_dist.size >= exact.size


def test_unreachable_target_raises(fig1):
    with pytest.raises(ExplorationError, match="below the target"):
        greedy_minimize(fig1, Fraction(1, 2), "c")


def test_custom_start(fig1):
    start = StorageDistribution({"alpha": 6, "beta": 2})
    distribution, throughput, _ = greedy_minimize(fig1, Fraction(1, 6), "c", start=start)
    assert throughput >= Fraction(1, 6)
    assert distribution.size <= start.size


def test_evaluation_count_reported(fig1):
    _dist, _thr, evaluations = greedy_minimize(fig1, Fraction(1, 7), "c")
    assert evaluations > 0
