"""Test package."""
