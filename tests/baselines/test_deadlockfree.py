"""Unit tests for repro.baselines.deadlockfree ([GBS05] baseline)."""

from fractions import Fraction

import pytest

from repro.baselines.deadlockfree import minimal_deadlock_free_distribution
from repro.exceptions import InconsistentGraphError
from repro.graph.builder import GraphBuilder


def test_fig1_minimum_is_first_pareto_point(fig1):
    distribution, throughput = minimal_deadlock_free_distribution(fig1, "c")
    assert distribution == {"alpha": 4, "beta": 2}
    assert distribution.size == 6
    assert throughput == Fraction(1, 7)


def test_gap_to_throughput_constraint(fig1):
    """The paper's motivation: the deadlock-free minimum may violate a
    throughput constraint that a slightly larger distribution meets."""
    from repro.buffers.explorer import minimal_distribution_for_throughput

    _, unconstrained = minimal_deadlock_free_distribution(fig1, "c")
    constrained = minimal_distribution_for_throughput(fig1, Fraction(1, 4), "c")
    assert unconstrained < Fraction(1, 4)
    assert constrained.size > 6


def test_always_deadlocked_graph_returns_none():
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b", 1, 2)
        .channel("b", "a", 2, 1, initial_tokens=1)
        .build()
    )
    assert minimal_deadlock_free_distribution(graph, "b") is None


def test_inconsistent_graph_rejected():
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b", 1, 2)
        .channel("b", "a", 1, 1)
        .build()
    )
    with pytest.raises(InconsistentGraphError):
        minimal_deadlock_free_distribution(graph)


def test_modem_minimum_matches_front(modem_graph):
    from repro.buffers.explorer import explore_design_space

    distribution, throughput = minimal_deadlock_free_distribution(modem_graph)
    front = explore_design_space(modem_graph).front
    assert distribution.size == front.min_positive.size
    assert throughput == front.min_positive.throughput
