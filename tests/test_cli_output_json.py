"""CLI --output-json and CSDF --throughput paths."""

import json

from repro.cli import main


def test_output_json(tmp_path, capsys):
    target = tmp_path / "result.json"
    assert main(["gallery:example", "--observe", "c", "--output-json", str(target)]) == 0
    data = json.loads(target.read_text())
    assert data["graph"] == "example"
    assert [entry["size"] for entry in data["pareto_front"]] == [6, 8, 9, 10]
    assert "written to" in capsys.readouterr().out


def test_csdf_throughput_constraint(tmp_path, capsys):
    from repro.csdf.graph import CSDFGraph
    from repro.io.csdfjson import write_csdf_json

    graph = CSDFGraph("decimator")
    graph.add_actor("src", (1,))
    graph.add_actor("decim", (2, 1))
    graph.add_actor("snk", (1,))
    graph.add_channel("src", "decim", (1,), (1, 1), name="a")
    graph.add_channel("decim", "snk", (1, 0), (1,), name="b")
    path = tmp_path / "g.json"
    write_csdf_json(graph, path)

    assert main([str(path), "--csdf", "--observe", "snk", "--throughput", "1/3"]) == 0
    assert "minimal storage" in capsys.readouterr().out

    assert main([str(path), "--csdf", "--observe", "snk", "--throughput", "1/2"]) == 1
    assert "not achievable" in capsys.readouterr().out
