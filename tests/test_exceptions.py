"""Unit tests for the exception hierarchy."""

import pytest

from repro import exceptions


def test_everything_derives_from_repro_error():
    for name in (
        "GraphError",
        "ValidationError",
        "InconsistentGraphError",
        "DeadlockError",
        "EngineError",
        "CapacityError",
        "ExplorationError",
        "ParseError",
        "AnalysisError",
    ):
        error_type = getattr(exceptions, name)
        assert issubclass(error_type, exceptions.ReproError)


def test_validation_error_is_graph_error():
    assert issubclass(exceptions.ValidationError, exceptions.GraphError)


def test_deadlock_error_carries_time():
    error = exceptions.DeadlockError("stuck", time=42)
    assert error.time == 42
    assert "stuck" in str(error)
    assert exceptions.DeadlockError("stuck").time is None


def test_single_except_clause_catches_library_failures(fig1):
    from repro import Executor, throughput

    caught = []
    for call in (
        lambda: Executor(fig1, {"zz": 1}),
        lambda: Executor(fig1, {"alpha": 4, "beta": 2}, "nope"),
        lambda: throughput(fig1, {"alpha": -1}),
    ):
        with pytest.raises(exceptions.ReproError) as info:
            call()
        caught.append(type(info.value))
    assert exceptions.CapacityError in caught
    assert exceptions.GraphError in caught
