"""Shared checking helpers used across test modules."""

from __future__ import annotations

from collections.abc import Mapping

from repro.engine.schedule import Schedule
from repro.graph.graph import SDFGraph


def assert_valid_schedule(
    graph: SDFGraph, schedule: Schedule, capacities: Mapping[str, int] | None
) -> None:
    """Replay *schedule* against the SDF semantics and check every rule.

    Verifies, at every recorded event:

    * firings of one actor do not overlap (no auto-concurrency) and
      last exactly the actor's execution time;
    * token counts never go negative and occupancy (stored tokens plus
      claimed output space) never exceeds the capacity;
    * every firing had sufficient input tokens available at its start.
    """
    # Stable sort by start time: events recorded at the same instant
    # keep their causal (recording) order, which matters for
    # zero-execution-time cascades.
    events = sorted(schedule.events, key=lambda event: event.start)
    last_end = {name: None for name in graph.actor_names}
    for event in events:
        actor = graph.actor(event.actor)
        assert event.duration == actor.execution_time, (
            f"{event.actor}: firing lasts {event.duration}, execution time is {actor.execution_time}"
        )
        previous = last_end[event.actor]
        assert previous is None or event.start >= previous, (
            f"{event.actor}: firing at {event.start} overlaps one ending at {previous}"
        )
        last_end[event.actor] = event.end

    # Replay token movement instant by instant.
    times = sorted({event.start for event in events} | {event.end for event in events})
    tokens = {name: channel.initial_tokens for name, channel in graph.channels.items()}
    claims = {name: 0 for name in graph.channel_names}
    for now in times:
        # Completions release claims, consume inputs, produce outputs.
        for event in events:
            if event.end == now and event.duration > 0:
                for channel in graph.incoming(event.actor):
                    tokens[channel.name] -= channel.consumption
                    assert tokens[channel.name] >= 0, f"channel {channel.name} went negative at t={now}"
                for channel in graph.outgoing(event.actor):
                    claims[channel.name] -= channel.production
                    tokens[channel.name] += channel.production
        # Starts check tokens and claim space.
        for event in events:
            if event.start == now:
                for channel in graph.incoming(event.actor):
                    assert tokens[channel.name] >= channel.consumption, (
                        f"{event.actor} started at t={now} without tokens on {channel.name}"
                    )
                if event.duration == 0:
                    for channel in graph.incoming(event.actor):
                        tokens[channel.name] -= channel.consumption
                    for channel in graph.outgoing(event.actor):
                        tokens[channel.name] += channel.production
                else:
                    for channel in graph.outgoing(event.actor):
                        claims[channel.name] += channel.production
        if capacities is not None:
            for name in graph.channel_names:
                capacity = capacities.get(name)
                if capacity is not None:
                    occupancy = tokens[name] + claims[name]
                    assert occupancy <= capacity, (
                        f"channel {name}: occupancy {occupancy} exceeds capacity {capacity} at t={now}"
                    )
