"""Full design-space explorations of every experiment graph.

These are the library-level versions of the paper's Sec. 11
experiments; the benchmark harness regenerates the tables and figures
from the same calls.
"""

from fractions import Fraction

import pytest

# Full BML99 + H.263 explorations: the heaviest workloads in the tree,
# excluded from the fast tier-1 CI job.
pytestmark = pytest.mark.slow

from repro.buffers.explorer import explore_design_space
from repro.engine.executor import Executor
from repro.gallery import (
    fig1_example,
    h263_decoder,
    modem,
    sample_rate_converter,
    satellite_receiver,
)
from repro.reporting.tables import table2, table2_row


@pytest.fixture(scope="module")
def explorations():
    graphs = {
        "example": fig1_example(),
        "modem": modem(),
        "samplerate": sample_rate_converter(),
        "satellite": satellite_receiver(),
        "h263": h263_decoder(blocks=9),
    }
    return {name: (graph, explore_design_space(graph)) for name, (graph) in graphs.items()}


class TestShapes:
    def test_every_graph_has_a_nonempty_staircase(self, explorations):
        for name, (_graph, result) in explorations.items():
            assert len(result.front) >= 1, name
            sizes = result.front.sizes()
            assert sizes == sorted(set(sizes)), name
            throughputs = result.front.throughputs()
            assert throughputs == sorted(set(throughputs)), name

    def test_front_spans_from_lb_to_max(self, explorations):
        for name, (_graph, result) in explorations.items():
            assert result.front.min_positive.size >= result.lower_bounds.size, name
            assert result.front.max_throughput_point.throughput == result.max_throughput, name

    def test_witnesses_verify_by_reexecution(self, explorations):
        for name, (graph, result) in explorations.items():
            for point in result.front:
                measured = Executor(graph, point.distribution, result.observe).run().throughput
                assert measured == point.throughput, name

    def test_below_first_pareto_size_deadlocks(self, explorations):
        """The minimal positive-throughput size is exactly minimal: the
        lower-bound distribution either is it, or deadlocks."""
        for name, (graph, result) in explorations.items():
            first = result.front.min_positive
            lb = result.lower_bounds
            at_lb = Executor(graph, lb, result.observe).run().throughput
            if first.size > lb.size:
                assert at_lb == 0, name
            else:
                assert at_lb == first.throughput, name


class TestKnownValues:
    def test_example_front(self, explorations):
        _graph, result = explorations["example"]
        assert [(p.size, p.throughput) for p in result.front] == [
            (6, Fraction(1, 7)),
            (8, Fraction(1, 6)),
            (9, Fraction(1, 5)),
            (10, Fraction(1, 4)),
        ]

    def test_modem_reaches_half(self, explorations):
        _graph, result = explorations["modem"]
        assert result.max_throughput == Fraction(1, 2)
        assert result.front.min_positive.size == 49

    def test_samplerate_front_has_many_steps(self, explorations):
        _graph, result = explorations["samplerate"]
        assert len(result.front) >= 5

    def test_h263_has_many_close_pareto_points(self, explorations):
        """The phenomenon motivating quantisation (Sec. 11)."""
        _graph, result = explorations["h263"]
        assert len(result.front) >= 10
        throughputs = result.front.throughputs()
        gaps = [b - a for a, b in zip(throughputs, throughputs[1:])]
        assert min(gaps) < result.max_throughput / 50


class TestTable2Generation:
    def test_rows_render(self, explorations):
        rows = [
            table2_row(graph, result.observe, result)
            for _name, (graph, result) in explorations.items()
        ]
        text = table2(rows)
        assert "example" in text and "modem" in text and "h263decoder" in text
        assert "#pareto" in text
