"""Smoke tests: the CLI handles every bundled gallery graph."""

import pytest

from repro.cli import main
from repro.gallery.registry import gallery_names

#: Graphs cheap enough for a full exploration in the smoke test.
_FULL_EXPLORE = ("example", "fig6", "bipartite", "modem")


@pytest.mark.parametrize("name", gallery_names())
def test_bounds_work_for_every_graph(name, capsys):
    assert main([f"gallery:{name}", "--bounds"]) == 0
    out = capsys.readouterr().out
    assert "lower bounds" in out
    assert "upper bounds" in out


@pytest.mark.parametrize("name", gallery_names())
def test_dot_export_for_every_graph(name, capsys):
    assert main([f"gallery:{name}", "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")


@pytest.mark.parametrize("name", _FULL_EXPLORE)
def test_full_exploration_smoke(name, capsys):
    assert main([f"gallery:{name}"]) == 0
    out = capsys.readouterr().out
    assert "Pareto points:" in out
    assert "maximal throughput:" in out


def test_xml_roundtrip_through_cli(tmp_path, capsys):
    exported = tmp_path / "roundtrip.xml"
    assert main(["gallery:modem", "--export-xml", str(exported), "--bounds"]) == 0
    capsys.readouterr()
    assert main([str(exported), "--bounds"]) == 0
    assert "lower bounds" in capsys.readouterr().out
