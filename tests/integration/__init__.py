"""Test package."""
