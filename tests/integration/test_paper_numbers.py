"""End-to-end reproduction of every number the paper quotes.

One test per claim, all driven through the public API only.
"""

from fractions import Fraction

import pytest

import repro
from repro import (
    GraphBuilder,
    execute,
    explore_design_space,
    max_throughput,
    minimal_distribution_for_throughput,
    repetition_vector,
    throughput,
)
from repro.gallery import fig1_example


@pytest.fixture(scope="module")
def graph():
    return fig1_example()


@pytest.fixture(scope="module")
def space(graph):
    return explore_design_space(graph, "c")


class TestSection4Schedule:
    def test_table1_new_iteration_every_7_steps(self, graph):
        """'A new iteration is initiated after every 7 time steps.'"""
        result = execute(graph, {"alpha": 4, "beta": 2}, "c", record_schedule=True)
        starts = result.schedule.start_times("c")
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert len(gaps) >= 2
        assert set(gaps) == {7}


class TestSection5Throughput:
    def test_c_fires_every_7_steps_throughput_one_seventh(self, graph):
        assert throughput(graph, {"alpha": 4, "beta": 2}, "c") == Fraction(1, 7)

    def test_throughput_ratios_follow_repetition_vector(self, graph):
        """'the throughput of each pair of actors ... related via a
        constant' (the repetition vector)."""
        q = repetition_vector(graph)
        caps = {"alpha": 4, "beta": 2}
        base = throughput(graph, caps, "c") / q["c"]
        for actor in ("a", "b"):
            assert throughput(graph, caps, actor) == base * q[actor]


class TestSection7ReducedSpace:
    def test_first_firing_9_instants_then_7_cycle(self, graph):
        result = execute(graph, {"alpha": 4, "beta": 2}, "c")
        assert result.first_firing_time == 9
        assert result.cycle_duration == 7
        assert [r.distance for r in result.reduced_states] == [9, 7, 7]


class TestSection8DesignSpace:
    def test_pareto_space_of_fig5(self, space):
        """Fig. 5 plus the text's quoted points: (4,2) smallest with
        positive throughput; alpha=6 raises it to 1/6; maximal 1/4 at
        size 10; nothing improves beyond size 10."""
        front = space.front
        assert front.min_positive.size == 6
        assert front.min_positive.throughput == Fraction(1, 7)
        assert front.throughput_at(8) == Fraction(1, 6)
        assert front.max_throughput_point.size == 10
        assert front.max_throughput_point.throughput == Fraction(1, 4)

    def test_throughput_capped_at_one_quarter(self, graph):
        """'The throughput of the actor c ... can never go above 0.25,
        as actor b always has to fire twice (requiring 4 time steps)'"""
        assert max_throughput(graph, "c") == Fraction(1, 4)
        assert throughput(graph, {"alpha": 100, "beta": 100}, "c") == Fraction(1, 4)

    def test_4_2_and_6_2_minimal_but_5_2_not(self, graph, space):
        witnesses_6 = [dict(w) for w in space.front[0].witnesses]
        assert {"alpha": 4, "beta": 2} in witnesses_6
        assert throughput(graph, {"alpha": 6, "beta": 2}, "c") == Fraction(1, 6)
        # (5,2) realises only 1/7, already available at size 6.
        assert throughput(graph, {"alpha": 5, "beta": 2}, "c") == Fraction(1, 7)

    def test_bounds_box_of_fig7(self, space):
        assert dict(space.lower_bounds) == {"alpha": 4, "beta": 2}
        assert space.lower_bounds.size == 6
        assert space.upper_bounds.size == 16


class TestSection9Queries:
    def test_minimal_distribution_under_constraint(self, graph):
        point = minimal_distribution_for_throughput(graph, Fraction(1, 6), "c")
        assert point.size == 8

    def test_exploration_strategies_equal(self, graph):
        fronts = [
            explore_design_space(graph, "c", strategy=s).front
            for s in ("dependency", "divide", "exhaustive")
        ]
        assert fronts[0] == fronts[1] == fronts[2]


class TestPublicApiSurface:
    def test_quickstart_docstring_example(self):
        graph = (
            GraphBuilder("example")
            .actor("a", 1)
            .actor("b", 2)
            .actor("c", 2)
            .channel("a", "b", 2, 3, name="alpha")
            .channel("b", "c", 1, 2, name="beta")
            .build()
        )
        space = explore_design_space(graph, observe="c")
        assert [(p.size, str(p.throughput)) for p in space.front] == [
            (6, "1/7"),
            (8, "1/6"),
            (9, "1/5"),
            (10, "1/4"),
        ]

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
