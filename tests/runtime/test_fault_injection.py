"""Fault-tolerant worker pool: injected worker death, timeouts, fallback.

The contract under test: evaluations are pure, so whatever happens to
the pool — a worker SIGKILLed mid-batch, a probe exceeding its
watchdog, a pool that cannot even start — the caller still receives
the exact results, with the degradation recorded in stats instead of
silently swallowed.
"""

import os
import signal
import time

import pytest

from repro.buffers.evalcache import EvaluationService
from repro.buffers.explorer import explore_design_space
from repro.engine import parallel
from repro.engine.parallel import ParallelProber, evaluate_raw
from repro.gallery.registry import gallery_graph
from repro.runtime import ExplorationConfig


def make_batch(graph, count=6, base=None):
    """Distinct distributions around the lower bounds."""
    from repro.buffers.bounds import lower_bound_distribution

    seed = base or lower_bound_distribution(graph)
    names = list(graph.channel_names)
    batch = []
    for step in range(count):
        capacities = dict(seed)
        capacities[names[step % len(names)]] += step
        batch.append(capacities)
    return batch


def kill_one_worker(prober):
    """SIGKILL one live worker of an already-started pool."""
    pool = prober._ensure_pool()
    # Force worker spawn, then pick a victim.
    pool.submit(time.monotonic).result()
    victim = next(iter(pool._processes))
    os.kill(victim, signal.SIGKILL)
    # Give the executor a beat to notice on some kernels.
    time.sleep(0.05)


class TestWorkerDeath:
    def test_killed_worker_triggers_restart_and_exact_results(self):
        graph = gallery_graph("example")
        batch = make_batch(graph)
        expected = [evaluate_raw(graph, c, "c") for c in batch]
        with ParallelProber(graph, "c", workers=2, max_restarts=2, retry_backoff=0.0) as prober:
            kill_one_worker(prober)
            results = prober.map(batch)
            assert results == expected
            assert prober.pool_restarts >= 1
            assert prober.fallback_reason is None  # recovered, not degraded

    def test_restart_budget_exhaustion_falls_back_inline(self):
        graph = gallery_graph("example")
        batch = make_batch(graph)
        expected = [evaluate_raw(graph, c, "c") for c in batch]
        events = []
        with ParallelProber(
            graph,
            "c",
            workers=2,
            max_restarts=0,
            retry_backoff=0.0,
            on_event=lambda name, **data: events.append((name, data)),
        ) as prober:
            kill_one_worker(prober)
            results = prober.map(batch)
            assert results == expected  # inline fallback is still exact
            assert prober.fallback_reason is not None
            assert "worker died" in prober.fallback_reason
            names = [name for name, _ in events]
            assert "pool_fallback" in names
            # Once failed, later batches go straight inline.
            assert prober.map(batch[:3]) == expected[:3]
            assert not prober.parallel

    def test_restart_emits_telemetry_with_backoff(self):
        graph = gallery_graph("example")
        events = []
        with ParallelProber(
            graph,
            "c",
            workers=2,
            max_restarts=1,
            retry_backoff=0.0,
            on_event=lambda name, **data: events.append((name, data)),
        ) as prober:
            kill_one_worker(prober)
            prober.map(make_batch(graph))
        restarts = [data for name, data in events if name == "pool_restart"]
        assert restarts and restarts[0]["reason"] == "worker died"
        assert restarts[0]["attempt"] == 1

    def test_service_reports_pool_health_in_stats(self):
        graph = gallery_graph("example")
        service = EvaluationService(
            graph, "c", config=ExplorationConfig(workers=2, max_pool_restarts=2, retry_backoff=0.0)
        )
        try:
            from repro.buffers.distribution import StorageDistribution

            batch = [StorageDistribution(c) for c in make_batch(graph)]
            kill_one_worker(service._ensure_prober())
            values = service.evaluate_many(batch)
            serial = EvaluationService(graph, "c")
            assert values == [serial(d) for d in batch]
            serial.close()
            assert service.stats.pool_restarts >= 1
        finally:
            service.close()


def _slow_task(capacity_items):
    time.sleep(0.8)
    return evaluate_raw(gallery_graph("example"), dict(capacity_items), "c")


class TestProbeTimeout:
    def test_hung_probe_trips_watchdog_and_falls_back(self, monkeypatch):
        graph = gallery_graph("example")
        batch = make_batch(graph, count=4)
        expected = [evaluate_raw(graph, c, "c") for c in batch]
        # Workers are forked, so they inherit the patched module and hang.
        monkeypatch.setattr(parallel, "_run_task", _slow_task)
        with ParallelProber(
            graph, "c", workers=2, probe_timeout=0.1, max_restarts=0, retry_backoff=0.0
        ) as prober:
            results = prober.map(batch)
            assert results == expected  # inline path bypasses _run_task
            assert prober.fallback_reason is not None
            assert "probe timeout" in prober.fallback_reason

    def test_timeout_restart_then_fallback_counts(self, monkeypatch):
        graph = gallery_graph("example")
        monkeypatch.setattr(parallel, "_run_task", _slow_task)
        with ParallelProber(
            graph, "c", workers=2, probe_timeout=0.1, max_restarts=1, retry_backoff=0.0
        ) as prober:
            prober.map(make_batch(graph, count=4))
            assert prober.pool_restarts == 1
            assert prober.fallback_reason is not None


class TestLifecycle:
    def test_close_is_idempotent(self):
        graph = gallery_graph("example")
        prober = ParallelProber(graph, "c", workers=2)
        prober.map(make_batch(graph))
        prober.close()
        prober.close()  # second close must be a no-op, not an error
        assert not prober.parallel

    def test_closed_prober_still_answers_inline(self):
        graph = gallery_graph("example")
        prober = ParallelProber(graph, "c", workers=2)
        prober.close()
        batch = make_batch(graph, count=3)
        assert prober.map(batch) == [evaluate_raw(graph, c, "c") for c in batch]

    def test_service_close_idempotent_and_syncs_stats(self):
        graph = gallery_graph("example")
        service = EvaluationService(graph, "c", config=ExplorationConfig(workers=2))
        from repro.buffers.distribution import StorageDistribution

        service.evaluate_many([StorageDistribution(c) for c in make_batch(graph)])
        service.close()
        batches_after_first_close = service.stats.parallel_batches
        service.close()
        assert service.stats.parallel_batches == batches_after_first_close
        assert service.stats.parallel_batches >= 1

    def test_exploration_with_injected_death_matches_serial(self):
        """End-to-end: a worker dying mid-exploration never changes the front."""
        graph = gallery_graph("example")
        serial = explore_design_space(graph, "c")
        config = ExplorationConfig(workers=2, max_pool_restarts=3, retry_backoff=0.0)
        service = EvaluationService(graph, "c", config=config)
        try:
            # Murder a worker before the first pooled batch: the batch
            # hits BrokenProcessPool, restarts and re-runs exactly.
            kill_one_worker(service._ensure_prober())
            result = explore_design_space(
                graph, "c", config=ExplorationConfig(evaluator=service)
            )
            assert service.stats.pool_restarts >= 1 or service.stats.parallel_batches == 0
        finally:
            service.close()
        assert result.front == serial.front


class TestPoolUnavailable:
    def test_pool_creation_failure_degrades_gracefully(self, monkeypatch):
        graph = gallery_graph("example")

        def refuse(*args, **kwargs):
            raise OSError("no more processes")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", refuse)
        batch = make_batch(graph)
        with ParallelProber(graph, "c", workers=2) as prober:
            assert prober.map(batch) == [evaluate_raw(graph, c, "c") for c in batch]
            assert "pool unavailable" in prober.fallback_reason
