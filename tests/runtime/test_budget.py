"""Budgets, cancellation and the run controller.

Covers the controller's accounting in isolation (injected clock) and
the end-to-end contract of ``explore_design_space``: a tripped budget
yields a partial result whose front is dominated-consistent with the
full exploration, never an exception.
"""

from fractions import Fraction

import pytest

from repro.buffers.evalcache import EvaluationService
from repro.buffers.explorer import explore_design_space
from repro.engine.executor import Executor
from repro.exceptions import BudgetExhausted, ExplorationError
from repro.gallery.registry import gallery_graph
from repro.runtime import Budget, CancelToken, ExplorationConfig
from repro.runtime.controller import RunController
from repro.runtime.telemetry import TelemetryHub


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBudget:
    def test_unlimited_by_default(self):
        assert Budget().unlimited

    def test_any_limit_defeats_unlimited(self):
        assert not Budget(deadline_s=10).unlimited
        assert not Budget(max_probes=5).unlimited
        assert not Budget(cancel=CancelToken()).unlimited

    def test_negative_limits_rejected(self):
        with pytest.raises(ExplorationError):
            Budget(deadline_s=-1)
        with pytest.raises(ExplorationError):
            Budget(max_probes=-1)

    def test_cancel_token_is_idempotent_and_threadsafe_flag(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        token.cancel()
        assert token.cancelled


class TestRunController:
    def make(self, budget, clock=None):
        clock = clock or FakeClock()
        return RunController(budget, TelemetryHub(clock=clock), clock=clock), clock

    def test_unlimited_never_trips(self):
        controller, _ = self.make(None)
        for _ in range(1000):
            controller.before_probes()
        assert controller.probes_used == 1000
        assert not controller.exhausted

    def test_probe_budget_trips_at_boundary(self):
        controller, _ = self.make(Budget(max_probes=3))
        for _ in range(3):
            controller.before_probes()
        with pytest.raises(BudgetExhausted) as caught:
            controller.before_probes()
        assert caught.value.reason == "probes"
        assert controller.probes_used == 3  # the rejected probe was not charged

    def test_batch_charge_is_all_or_nothing(self):
        controller, _ = self.make(Budget(max_probes=5))
        controller.before_probes(3)
        assert controller.allows(2)
        assert not controller.allows(3)
        with pytest.raises(BudgetExhausted):
            controller.before_probes(3)
        assert controller.probes_used == 3  # rejected batch cost nothing
        controller.before_probes(2)  # the remainder still fits
        assert controller.remaining_probes() == 0

    def test_deadline_trips_via_clock(self):
        controller, clock = self.make(Budget(deadline_s=10.0))
        controller.before_probes()
        clock.advance(10.0)
        with pytest.raises(BudgetExhausted) as caught:
            controller.before_probes()
        assert caught.value.reason == "deadline"

    def test_cancel_trips_immediately(self):
        token = CancelToken()
        controller, _ = self.make(Budget(cancel=token))
        controller.before_probes()
        token.cancel()
        with pytest.raises(BudgetExhausted) as caught:
            controller.check()
        assert caught.value.reason == "cancelled"

    def test_budget_exhausted_event_emitted_once(self):
        controller, _ = self.make(Budget(max_probes=0))
        for _ in range(3):
            with pytest.raises(BudgetExhausted):
                controller.before_probes()
        assert controller.telemetry.counters["budget_exhausted"] == 1


class TestServiceBudget:
    def test_service_charges_each_execution(self):
        graph = gallery_graph("example")
        service = EvaluationService(
            graph, "c", config=ExplorationConfig(budget=Budget(max_probes=2))
        )
        lower = {"alpha": 4, "beta": 2}
        from repro.buffers.distribution import StorageDistribution

        service(StorageDistribution(lower))
        service(StorageDistribution({"alpha": 5, "beta": 2}))
        with pytest.raises(BudgetExhausted):
            service(StorageDistribution({"alpha": 6, "beta": 2}))
        # Cache hits stay free after exhaustion.
        assert service(StorageDistribution(lower)) == Fraction(1, 7)

    def test_budget_requires_cache(self):
        with pytest.raises(ExplorationError, match="cache"):
            ExplorationConfig(cache=False, budget=Budget(max_probes=1))


class TestPartialResults:
    def test_probe_budget_yields_partial_result(self):
        graph = gallery_graph("example")
        result = explore_design_space(
            graph, "c", config=ExplorationConfig(budget=Budget(max_probes=4))
        )
        assert not result.complete
        assert result.exhausted == "probes"
        assert result.resume_token is not None
        assert result.stats.evaluations == 4

    def test_zero_deadline_yields_empty_partial_not_an_exception(self):
        graph = gallery_graph("example")
        result = explore_design_space(
            graph, "c", config=ExplorationConfig(budget=Budget(deadline_s=0.0))
        )
        assert not result.complete
        assert result.exhausted == "deadline"
        assert len(result.front) == 0

    def test_cancellation_mid_run_via_telemetry_callback(self):
        graph = gallery_graph("example")
        token = CancelToken()
        finishes = []

        def cancel_after_three(event):
            if event.name == "probe_finish":
                finishes.append(event)
                if len(finishes) == 3:
                    token.cancel()

        result = explore_design_space(
            graph,
            "c",
            config=ExplorationConfig(
                budget=Budget(cancel=token), on_event=cancel_after_three
            ),
        )
        assert not result.complete
        assert result.exhausted == "cancelled"
        assert result.stats.evaluations == 3

    @pytest.mark.parametrize("max_probes", [1, 2, 4, 6])
    def test_partial_front_is_dominated_consistent(self, max_probes):
        """Every partial-front point is a true evaluation, the front is a
        valid Pareto front, and it never contradicts the full one."""
        graph = gallery_graph("example")
        full = explore_design_space(graph, "c")
        partial = explore_design_space(
            graph, "c", config=ExplorationConfig(budget=Budget(max_probes=max_probes))
        )
        assert not partial.complete
        for point in partial.front:
            # Witnesses really achieve the claimed throughput (exactness).
            for witness in point.witnesses:
                actual = Executor(graph, witness, "c").run().throughput
                assert actual == point.throughput
            # Never claims more than the true design space offers.
            assert point.throughput <= full.front.throughput_at(point.size)
        # Front invariant: strictly increasing in both dimensions.
        sizes = partial.front.sizes()
        throughputs = partial.front.throughputs()
        assert sizes == sorted(set(sizes))
        assert throughputs == sorted(set(throughputs))

    def test_partial_result_counts_only_new_probes_on_resume(self):
        """The replayed prefix is free: each resumed leg pays only for
        fresh executions, so the run finishes in ceil(total/leg) legs."""
        graph = gallery_graph("example")
        full = explore_design_space(graph, "c")
        total = full.stats.evaluations
        leg_budget = 4
        legs = 1
        result = explore_design_space(
            graph, "c", config=ExplorationConfig(budget=Budget(max_probes=leg_budget))
        )
        while not result.complete:
            legs += 1
            result = explore_design_space(
                graph,
                "c",
                config=ExplorationConfig(budget=Budget(max_probes=leg_budget)),
                resume=result.resume_token,
            )
            assert legs < 20, "resume is not making progress"
        assert legs == -(-total // leg_budget)  # ceil division
        assert result.front == full.front

    def test_find_minimal_distribution_propagates_exhaustion(self):
        """A budget tripping before a witness must not masquerade as
        'provably unachievable' (None)."""
        from repro.buffers.dependencies import find_minimal_distribution

        graph = gallery_graph("example")
        with pytest.raises(BudgetExhausted):
            find_minimal_distribution(
                graph,
                Fraction(1, 4),
                "c",
                config=ExplorationConfig(budget=Budget(max_probes=2)),
            )
