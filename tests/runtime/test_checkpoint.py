"""Checkpoint / resume: the round-trip identity guarantee.

The pinned property: interrupt a run anywhere, save a checkpoint,
resume from it — the final Pareto front (witnesses included) is
identical to an uninterrupted run.  Verified on the paper's running
example (Fig. 1) and the three BML99 application graphs (modem, sample
rate converter, satellite receiver).
"""

import json

import pytest

from repro.buffers.explorer import explore_design_space
from repro.exceptions import CheckpointError
from repro.gallery.registry import gallery_graph
from repro.runtime import Budget, ExplorationConfig, ResumeToken, load_checkpoint, save_checkpoint
from repro.runtime.checkpoint import CHECKPOINT_FORMAT, CHECKPOINT_VERSION, coerce_resume


def fronts_identical(a, b):
    """Equality including witnesses (ParetoFront.__eq__ ignores them)."""
    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if (left.size, left.throughput, left.witnesses) != (
            right.size,
            right.throughput,
            right.witnesses,
        ):
            return False
    return True


def run_interrupted_then_resume(graph, observe, tmp_path, *, max_probes, strategy="dependency"):
    """Budget-interrupt a run, persist the checkpoint, resume from disk."""
    partial = explore_design_space(
        graph,
        observe,
        strategy=strategy,
        config=ExplorationConfig(
            budget=Budget(max_probes=max_probes),
            checkpoint=tmp_path / "run.ckpt.json",
        ),
    )
    assert not partial.complete
    resumed = explore_design_space(
        graph, observe, strategy=strategy, resume=str(tmp_path / "run.ckpt.json")
    )
    assert resumed.complete
    return partial, resumed


class TestRoundTripIdentity:
    def test_fig1_example_round_trip(self, tmp_path):
        graph = gallery_graph("example")
        full = explore_design_space(graph, "c")
        _, resumed = run_interrupted_then_resume(graph, "c", tmp_path, max_probes=4)
        assert fronts_identical(resumed.front, full.front)
        assert resumed.max_throughput == full.max_throughput

    @pytest.mark.parametrize("max_probes", [1, 3, 5, 8])
    def test_fig1_example_any_interruption_point(self, tmp_path, max_probes):
        graph = gallery_graph("example")
        full = explore_design_space(graph, "c")
        _, resumed = run_interrupted_then_resume(
            graph, "c", tmp_path, max_probes=max_probes
        )
        assert fronts_identical(resumed.front, full.front)

    def test_fig1_example_divide_strategy_round_trip(self, tmp_path):
        graph = gallery_graph("example")
        full = explore_design_space(graph, "c", strategy="divide")
        _, resumed = run_interrupted_then_resume(
            graph, "c", tmp_path, max_probes=5, strategy="divide"
        )
        assert fronts_identical(resumed.front, full.front)

    def test_modem_round_trip(self, tmp_path):
        graph = gallery_graph("modem")
        full = explore_design_space(graph)
        _, resumed = run_interrupted_then_resume(
            graph, None, tmp_path, max_probes=full.stats.evaluations // 2
        )
        assert fronts_identical(resumed.front, full.front)
        assert resumed.max_throughput == full.max_throughput

    @pytest.mark.slow
    def test_sample_rate_converter_round_trip(self, tmp_path):
        graph = gallery_graph("samplerate")
        full = explore_design_space(graph)
        _, resumed = run_interrupted_then_resume(
            graph, None, tmp_path, max_probes=full.stats.evaluations // 2
        )
        assert fronts_identical(resumed.front, full.front)
        assert resumed.max_throughput == full.max_throughput

    @pytest.mark.slow
    def test_satellite_receiver_round_trip(self, tmp_path):
        graph = gallery_graph("satellite")
        full = explore_design_space(graph)
        _, resumed = run_interrupted_then_resume(
            graph, None, tmp_path, max_probes=full.stats.evaluations // 2
        )
        assert fronts_identical(resumed.front, full.front)
        assert resumed.max_throughput == full.max_throughput

    def test_resume_replays_prefix_as_cache_hits(self, tmp_path):
        graph = gallery_graph("example")
        partial, resumed = run_interrupted_then_resume(graph, "c", tmp_path, max_probes=4)
        # The resumed leg re-asks the interrupted prefix; all of it must
        # come from the restored memo, not re-execution.
        assert resumed.stats.cache_hits >= partial.stats.evaluations

    def test_in_memory_token_equivalent_to_file(self, tmp_path):
        graph = gallery_graph("example")
        partial = explore_design_space(
            graph, "c", config=ExplorationConfig(budget=Budget(max_probes=4))
        )
        via_token = explore_design_space(graph, "c", resume=partial.resume_token)
        path = save_checkpoint(partial.resume_token, tmp_path / "ck.json")
        via_file = explore_design_space(graph, "c", resume=path)
        assert fronts_identical(via_token.front, via_file.front)


class TestCheckpointFiles:
    def make_partial(self, tmp_path):
        graph = gallery_graph("example")
        return explore_design_space(
            graph,
            "c",
            config=ExplorationConfig(
                budget=Budget(max_probes=4), checkpoint=tmp_path / "ck.json"
            ),
        )

    def test_checkpoint_written_and_loadable(self, tmp_path):
        result = self.make_partial(tmp_path)
        token = load_checkpoint(tmp_path / "ck.json")
        assert token.graph_name == "example"
        assert token.strategy == "dependency"
        assert not token.complete
        assert token.exhausted == "probes"
        assert token.probes_recorded == result.stats.evaluations

    def test_payload_schema(self, tmp_path):
        self.make_partial(tmp_path)
        payload = json.loads((tmp_path / "ck.json").read_text())
        assert payload["format"] == CHECKPOINT_FORMAT
        assert payload["version"] == CHECKPOINT_VERSION
        for key in ("graph", "observe", "strategy", "channels", "memo", "frontier", "stats"):
            assert key in payload
        entry = payload["memo"][0]
        assert set(entry) == {"caps", "throughput", "states", "blocked", "deficits"}

    def test_token_frontier_and_pending_views(self, tmp_path):
        result = self.make_partial(tmp_path)
        token = result.resume_token
        assert fronts_identical(token.frontier, result.front)
        # The sweep was cut mid-frontier: queued work is observable.
        assert all(hasattr(d, "size") for d in token.pending)

    def test_complete_run_also_checkpointable(self, tmp_path):
        graph = gallery_graph("example")
        result = explore_design_space(
            graph, "c", config=ExplorationConfig(checkpoint=tmp_path / "done.json")
        )
        assert result.complete
        assert result.resume_token is None  # nothing to resume
        token = load_checkpoint(tmp_path / "done.json")
        assert token.complete
        # Resuming a complete checkpoint is a free full replay.
        replay = explore_design_space(graph, "c", resume=token)
        assert replay.stats.evaluations == result.stats.evaluations  # cumulative, no new work
        assert fronts_identical(replay.front, result.front)

    def test_save_accepts_result_directly(self, tmp_path):
        result = self.make_partial(tmp_path)
        save_checkpoint(result, tmp_path / "direct.json")
        assert load_checkpoint(tmp_path / "direct.json").graph_name == "example"


class TestCheckpointErrors:
    def test_not_json(self, tmp_path):
        (tmp_path / "bad.json").write_text("{nope")
        with pytest.raises(CheckpointError, match="not valid checkpoint JSON"):
            load_checkpoint(tmp_path / "bad.json")

    def test_wrong_format(self, tmp_path):
        (tmp_path / "alien.json").write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError, match="payload"):
            load_checkpoint(tmp_path / "alien.json")

    def test_unsupported_version(self, tmp_path):
        (tmp_path / "future.json").write_text(
            json.dumps({"format": CHECKPOINT_FORMAT, "version": 99})
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(tmp_path / "future.json")

    def test_missing_section(self, tmp_path):
        (tmp_path / "cut.json").write_text(
            json.dumps({"format": CHECKPOINT_FORMAT, "version": CHECKPOINT_VERSION})
        )
        with pytest.raises(CheckpointError, match="misses"):
            load_checkpoint(tmp_path / "cut.json")

    def test_wrong_graph_rejected_on_resume(self, tmp_path):
        graph = gallery_graph("example")
        partial = explore_design_space(
            graph, "c", config=ExplorationConfig(budget=Budget(max_probes=3))
        )
        other = gallery_graph("modem")
        with pytest.raises(CheckpointError, match="written for graph"):
            explore_design_space(other, resume=partial.resume_token)

    def test_resume_type_error(self):
        with pytest.raises(CheckpointError, match="cannot resume"):
            coerce_resume(42)

    def test_save_rejects_tokenless_object(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot checkpoint"):
            save_checkpoint(object(), tmp_path / "x.json")

    def test_resume_requires_cache(self):
        graph = gallery_graph("example")
        partial = explore_design_space(
            graph, "c", config=ExplorationConfig(budget=Budget(max_probes=3))
        )
        with pytest.raises(CheckpointError, match="cache"):
            explore_design_space(
                graph,
                "c",
                config=ExplorationConfig(cache=False),
                resume=partial.resume_token,
            )

    def test_raw_mapping_payload_accepted(self):
        graph = gallery_graph("example")
        partial = explore_design_space(
            graph, "c", config=ExplorationConfig(budget=Budget(max_probes=4))
        )
        payload = dict(partial.resume_token.payload)
        resumed = explore_design_space(graph, "c", resume=payload)
        assert resumed.complete

    def test_token_repr_mentions_state(self):
        graph = gallery_graph("example")
        partial = explore_design_space(
            graph, "c", config=ExplorationConfig(budget=Budget(max_probes=3))
        )
        text = repr(partial.resume_token)
        assert "example" in text and "partial" in text
