"""ExplorationConfig: validation, the removed-kwarg guard, re-exports."""

import warnings
from fractions import Fraction

import pytest

from repro.buffers.dependencies import dependency_sweep, find_minimal_distribution
from repro.buffers.evalcache import EvaluationService
from repro.buffers.explorer import explore_design_space, minimal_distribution_for_throughput
from repro.exceptions import ConfigError, EngineError, ExplorationError
from repro.gallery.registry import gallery_graph
from repro.runtime import Budget, ExplorationConfig
from repro.runtime.config import UNSET, coerce_config


class TestValidation:
    def test_defaults(self):
        config = ExplorationConfig()
        assert config.engine == "auto"
        assert config.workers == 1
        assert config.cache is True
        assert config.budget is None

    def test_unknown_engine_raises_engine_error(self):
        with pytest.raises(EngineError, match="unknown engine"):
            ExplorationConfig(engine="warp")

    def test_workers_must_be_positive(self):
        with pytest.raises(ExplorationError):
            ExplorationConfig(workers=0)

    def test_probe_timeout_must_be_positive(self):
        with pytest.raises(ExplorationError):
            ExplorationConfig(probe_timeout=0)

    def test_max_pool_restarts_nonnegative(self):
        with pytest.raises(ExplorationError):
            ExplorationConfig(max_pool_restarts=-1)

    def test_evaluator_excludes_other_run_knobs(self):
        graph = gallery_graph("example")
        with EvaluationService(graph, "c") as service:
            ExplorationConfig(evaluator=service)  # fine on its own
            with pytest.raises(ExplorationError, match="workers"):
                ExplorationConfig(evaluator=service, workers=2)
            with pytest.raises(ExplorationError, match="budget"):
                ExplorationConfig(evaluator=service, budget=Budget(max_probes=1))

    def test_unknown_backend_raises_config_error_at_construction(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError, match="unknown probe backend 'warp'"):
            ExplorationConfig(backend="warp")
        # ConfigError is an ExplorationError: one catch covers both.
        with pytest.raises(ExplorationError):
            ExplorationConfig(backend="warp")

    def test_error_lists_registered_backends(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError, match="batch-numpy"):
            ExplorationConfig(backend="warp")

    def test_backend_capability_mismatch_raises_config_error(self):
        from repro.exceptions import ConfigError

        # The reference engine records blocking data; compiled-only
        # backends cannot serve it and must be rejected up front.
        with pytest.raises(ConfigError, match="lacks the blocking capability"):
            ExplorationConfig(engine="reference", backend="fastcore")
        with pytest.raises(ConfigError, match="lacks the blocking capability"):
            ExplorationConfig(engine="reference", backend="batch-numpy")
        # engine="fast" promises compiled probes.
        with pytest.raises(ConfigError, match="lacks the compiled capability"):
            ExplorationConfig(engine="fast", backend="reference")

    def test_valid_backend_engine_pairs_accepted(self):
        ExplorationConfig(backend="reference")
        ExplorationConfig(backend="fastcore")
        ExplorationConfig(backend="batch-numpy", batch=16)
        ExplorationConfig(engine="reference", backend="reference")
        ExplorationConfig(engine="fast", backend="batch-numpy")

    def test_negative_batch_raises_config_error(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError, match="batch must be >= 0"):
            ExplorationConfig(batch=-1)

    def test_evaluator_excludes_backend_and_batch(self):
        graph = gallery_graph("example")
        with EvaluationService(graph, "c") as service:
            with pytest.raises(ExplorationError, match="backend"):
                ExplorationConfig(evaluator=service, backend="batch-numpy")
            with pytest.raises(ExplorationError, match="batch"):
                ExplorationConfig(evaluator=service, batch=8)

    def test_replaced_returns_modified_copy(self):
        config = ExplorationConfig(workers=2)
        other = config.replaced(workers=4)
        assert config.workers == 2 and other.workers == 4
        assert other.engine == config.engine

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExplorationConfig().workers = 3


class TestCoerceConfig:
    def test_no_inputs_yields_default_config(self):
        config = coerce_config(None, caller="f")
        assert config == ExplorationConfig()

    def test_explicit_config_passes_through(self):
        config = ExplorationConfig(workers=2)
        assert coerce_config(config, caller="f") is config

    def test_legacy_kwargs_raise_config_error_naming_the_migration(self):
        with pytest.raises(ConfigError, match=r"f: the keyword\(s\) engine=, workers="):
            coerce_config(None, caller="f", workers=3, engine="reference")

    def test_error_points_at_the_migration_table(self):
        with pytest.raises(ConfigError, match="docs/RUNTIME.md"):
            coerce_config(None, caller="f", workers=3)

    def test_mixing_config_and_legacy_raises_too(self):
        with pytest.raises(ConfigError, match="were removed"):
            coerce_config(ExplorationConfig(), caller="f", workers=2)

    def test_unset_sentinel_is_falsy_and_distinct_from_none(self):
        assert not UNSET
        # None is a meaningful legacy value: evaluator=None must still
        # be rejected, not mistaken for "kwarg not passed".
        with pytest.raises(ConfigError, match="evaluator="):
            coerce_config(None, caller="f", evaluator=None)


class TestEntryPointShims:
    """Every public entry point accepts config= and rejects the removed
    kwargs with the migration message (not a bare TypeError)."""

    def test_explore_design_space(self):
        graph = gallery_graph("example")
        with pytest.raises(ConfigError, match="explore_design_space"):
            explore_design_space(graph, "c", workers=1)

    def test_explore_design_space_config_form(self):
        graph = gallery_graph("example")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = explore_design_space(graph, "c", config=ExplorationConfig())
        assert [p.size for p in result.front] == [6, 8, 9, 10]

    def test_minimal_distribution_for_throughput(self):
        graph = gallery_graph("example")
        with pytest.raises(ConfigError, match="minimal_distribution_for_throughput"):
            minimal_distribution_for_throughput(graph, Fraction(1, 6), "c", engine="auto")

    def test_dependency_sweep(self):
        graph = gallery_graph("example")
        with pytest.raises(ConfigError, match="dependency_sweep"):
            dependency_sweep(graph, "c", stop_throughput=Fraction(1, 4), engine="reference")

    def test_find_minimal_distribution(self):
        graph = gallery_graph("example")
        with pytest.raises(ConfigError, match="find_minimal_distribution"):
            find_minimal_distribution(graph, Fraction(1, 6), "c", engine="auto")

    def test_evaluation_service(self):
        graph = gallery_graph("example")
        with pytest.raises(ConfigError, match="EvaluationService"):
            EvaluationService(graph, "c", workers=1, cache=True)

    def test_mixing_raises_at_entry_point(self):
        graph = gallery_graph("example")
        with pytest.raises(ConfigError, match="were removed"):
            explore_design_space(graph, "c", config=ExplorationConfig(), workers=2)

    def test_config_only_call_emits_no_deprecation(self):
        graph = gallery_graph("example")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            EvaluationService(graph, "c", config=ExplorationConfig()).close()
            dependency_sweep(
                graph, "c", stop_throughput=Fraction(1, 4), config=ExplorationConfig()
            )


class TestTopLevelExports:
    def test_runtime_api_reexported_from_repro(self):
        import repro

        for name in (
            "ExplorationConfig",
            "Budget",
            "CancelToken",
            "BudgetExhausted",
            "CheckpointError",
            "ResumeToken",
            "TelemetryEvent",
            "load_checkpoint",
            "save_checkpoint",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__
