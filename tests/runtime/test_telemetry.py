"""Unit tests for the telemetry hub."""

import pytest

from repro.runtime.telemetry import KNOWN_EVENTS, TelemetryEvent, TelemetryHub


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTelemetryHub:
    def test_counters_accumulate_per_event_name(self):
        hub = TelemetryHub()
        hub.emit("probe_start")
        hub.emit("probe_start")
        hub.emit("cache_hit")
        assert hub.counters == {"probe_start": 2, "cache_hit": 1}

    def test_callback_receives_structured_events(self):
        clock = FakeClock()
        seen = []
        hub = TelemetryHub(on_event=seen.append, clock=clock)
        clock.advance(1.5)
        hub.emit("probe_finish", size=7, throughput="1/4")
        (event,) = seen
        assert isinstance(event, TelemetryEvent)
        assert event.name == "probe_finish"
        assert event.data == {"size": 7, "throughput": "1/4"}
        assert event.elapsed_s == pytest.approx(1.5)

    def test_event_to_dict_flattens_payload(self):
        event = TelemetryEvent("prune", {"kind": "ceiling"}, 2.0)
        assert event.to_dict() == {"event": "prune", "elapsed_s": 2.0, "kind": "ceiling"}

    def test_no_callback_is_fine(self):
        hub = TelemetryHub()
        hub.emit("run_start", graph="g")  # must not raise
        assert hub.counters["run_start"] == 1

    def test_callback_errors_propagate(self):
        def explode(event):
            raise RuntimeError("consumer bug")

        hub = TelemetryHub(on_event=explode)
        with pytest.raises(RuntimeError, match="consumer bug"):
            hub.emit("run_start")

    def test_timers_aggregate_count_and_total(self):
        hub = TelemetryHub()
        hub.record_time("probe", 0.25)
        hub.record_time("probe", 0.5)
        assert hub.timers["probe"]["count"] == 2
        assert hub.timers["probe"]["total_s"] == pytest.approx(0.75)

    def test_timed_context_uses_clock(self):
        clock = FakeClock()
        hub = TelemetryHub(clock=clock)
        with hub.timed("section"):
            clock.advance(3.0)
        assert hub.timers["section"]["total_s"] == pytest.approx(3.0)

    def test_snapshot_is_json_ready(self):
        import json

        clock = FakeClock()
        hub = TelemetryHub(clock=clock)
        hub.emit("probe_start")
        hub.record_time("probe", 0.1)
        clock.advance(2.0)
        snapshot = hub.snapshot()
        assert snapshot["elapsed_s"] == pytest.approx(2.0)
        assert snapshot["counters"] == {"probe_start": 1}
        assert snapshot["timers"]["probe"]["count"] == 1
        json.dumps(snapshot)  # must serialise

    def test_memory_constant_no_event_buffer(self):
        hub = TelemetryHub()
        for _ in range(10_000):
            hub.emit("cache_hit")
        # Only the counter grows, no per-event storage.
        assert hub.counters == {"cache_hit": 10_000}

    def test_known_events_documented(self):
        for name in ("probe_start", "pool_restart", "budget_exhausted", "checkpoint_saved"):
            assert name in KNOWN_EVENTS
