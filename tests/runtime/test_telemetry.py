"""Unit tests for the telemetry hub."""

import pytest

from repro.runtime.telemetry import (
    KNOWN_EVENTS,
    TelemetryEvent,
    TelemetryHub,
    to_prometheus,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTelemetryHub:
    def test_counters_accumulate_per_event_name(self):
        hub = TelemetryHub()
        hub.emit("probe_start")
        hub.emit("probe_start")
        hub.emit("cache_hit")
        assert hub.counters == {"probe_start": 2, "cache_hit": 1}

    def test_callback_receives_structured_events(self):
        clock = FakeClock()
        seen = []
        hub = TelemetryHub(on_event=seen.append, clock=clock)
        clock.advance(1.5)
        hub.emit("probe_finish", size=7, throughput="1/4")
        (event,) = seen
        assert isinstance(event, TelemetryEvent)
        assert event.name == "probe_finish"
        assert event.data == {"size": 7, "throughput": "1/4"}
        assert event.elapsed_s == pytest.approx(1.5)

    def test_event_to_dict_flattens_payload(self):
        event = TelemetryEvent("prune", {"kind": "ceiling"}, 2.0)
        assert event.to_dict() == {"event": "prune", "elapsed_s": 2.0, "kind": "ceiling"}

    def test_no_callback_is_fine(self):
        hub = TelemetryHub()
        hub.emit("run_start", graph="g")  # must not raise
        assert hub.counters["run_start"] == 1

    def test_callback_errors_propagate(self):
        def explode(event):
            raise RuntimeError("consumer bug")

        hub = TelemetryHub(on_event=explode)
        with pytest.raises(RuntimeError, match="consumer bug"):
            hub.emit("run_start")

    def test_timers_aggregate_count_and_total(self):
        hub = TelemetryHub()
        hub.record_time("probe", 0.25)
        hub.record_time("probe", 0.5)
        assert hub.timers["probe"]["count"] == 2
        assert hub.timers["probe"]["total_s"] == pytest.approx(0.75)

    def test_timed_context_uses_clock(self):
        clock = FakeClock()
        hub = TelemetryHub(clock=clock)
        with hub.timed("section"):
            clock.advance(3.0)
        assert hub.timers["section"]["total_s"] == pytest.approx(3.0)

    def test_snapshot_is_json_ready(self):
        import json

        clock = FakeClock()
        hub = TelemetryHub(clock=clock)
        hub.emit("probe_start")
        hub.record_time("probe", 0.1)
        clock.advance(2.0)
        snapshot = hub.snapshot()
        assert snapshot["elapsed_s"] == pytest.approx(2.0)
        assert snapshot["counters"] == {"probe_start": 1}
        assert snapshot["timers"]["probe"]["count"] == 1
        json.dumps(snapshot)  # must serialise

    def test_memory_constant_no_event_buffer(self):
        hub = TelemetryHub()
        for _ in range(10_000):
            hub.emit("cache_hit")
        # Only the counter grows, no per-event storage.
        assert hub.counters == {"cache_hit": 10_000}

    def test_known_events_documented(self):
        for name in ("probe_start", "pool_restart", "budget_exhausted", "checkpoint_saved"):
            assert name in KNOWN_EVENTS


class TestMerge:
    def test_counters_fold_additively(self):
        server, job = TelemetryHub(), TelemetryHub()
        server.emit("probe_finish")
        job.emit("probe_finish")
        job.emit("probe_finish")
        job.emit("cache_hit")
        assert server.merge(job) is server
        assert server.counters == {"probe_finish": 3, "cache_hit": 1}

    def test_timers_fold_count_and_total(self):
        server, job = TelemetryHub(), TelemetryHub()
        server.record_time("probe", 0.5)
        job.record_time("probe", 0.25)
        job.record_time("probe", 0.25)
        job.record_time("startup", 1.0)
        server.merge(job)
        assert server.timers["probe"]["count"] == 3
        assert server.timers["probe"]["total_s"] == pytest.approx(1.0)
        assert server.timers["startup"]["count"] == 1

    def test_merge_accepts_snapshot_payloads(self):
        job = TelemetryHub()
        job.emit("prune")
        job.record_time("probe", 2.0)
        server = TelemetryHub()
        server.merge(job.snapshot())
        assert server.counters == {"prune": 1}
        assert server.timers["probe"] == {"count": 1, "total_s": 2.0}

    def test_merge_does_not_mutate_source(self):
        server, job = TelemetryHub(), TelemetryHub()
        job.emit("cache_hit")
        server.merge(job)
        server.merge(job)  # aggregating twice doubles the server only
        assert job.counters == {"cache_hit": 1}
        assert server.counters == {"cache_hit": 2}


class TestToPrometheus:
    def test_counters_render_as_labelled_family(self):
        hub = TelemetryHub()
        hub.emit("probe_finish")
        hub.emit("probe_finish")
        text = to_prometheus(hub)
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{event="probe_finish"} 2' in text

    def test_timers_render_summary_count_and_sum(self):
        hub = TelemetryHub()
        hub.record_time("probe", 0.5)
        hub.record_time("probe", 1.5)
        text = to_prometheus(hub)
        assert 'repro_timer_seconds_count{timer="probe"} 2' in text
        assert 'repro_timer_seconds_sum{timer="probe"} 2.0' in text

    def test_uptime_and_trailing_newline(self):
        clock = FakeClock()
        hub = TelemetryHub(clock=clock)
        clock.advance(4.0)
        text = to_prometheus(hub)
        assert "repro_uptime_seconds 4.0" in text
        assert text.endswith("\n")

    def test_extra_gauges_with_labels(self):
        hub = TelemetryHub()
        text = to_prometheus(
            hub,
            gauges=[
                ("queue_depth", {}, 3.0),
                ("jobs", {"state": "queued"}, 2.0),
                ("jobs", {"state": "done"}, 5.0),
            ],
        )
        assert "repro_queue_depth 3.0" in text
        assert 'repro_jobs{state="queued"} 2.0' in text
        assert 'repro_jobs{state="done"} 5.0' in text
        assert text.count("# TYPE repro_jobs gauge") == 1

    def test_label_values_escaped(self):
        hub = TelemetryHub()
        hub.emit('weird"name\nwith\\escapes')
        text = to_prometheus(hub)
        assert 'event="weird\\"name\\nwith\\\\escapes"' in text

    def test_exposition_lines_well_formed(self):
        hub = TelemetryHub()
        hub.emit("probe_start")
        hub.record_time("probe", 0.1)
        for line in to_prometheus(hub).splitlines():
            assert line.startswith("#") or " " in line  # sample lines: name value
