"""One helper feeds every backend-capability listing.

``capability_flags`` is the single source of the per-backend boolean
flags; ``repro backends --json`` and ``GET /v1/backends`` must both
serve exactly what it computes.
"""

import json

from repro.engine.backends import (
    KNOWN_CAPABILITIES,
    backend_descriptions,
    backend_for,
    capability_flags,
)
from repro.service.cli import main as service_main
from repro.service.server import AnalysisServer


class TestHelper:
    def test_reference_backend_flags(self):
        assert capability_flags(backend_for("reference")) == {
            "exact": True,
            "blocking": True,
            "compiled": False,
            "lanes": False,
        }

    def test_flags_cover_exactly_the_known_capabilities(self):
        for name in ("reference", "fastcore", "batch-numpy", "cc"):
            flags = capability_flags(backend_for(name))
            assert tuple(flags) == KNOWN_CAPABILITIES
            assert all(isinstance(value, bool) for value in flags.values())

    def test_descriptions_carry_consistent_flags(self):
        for row in backend_descriptions():
            assert row["flags"] == capability_flags(backend_for(row["name"]))
            for tag, enabled in row["flags"].items():
                assert enabled == (tag in row["capabilities"])


class TestSharedSurfaces:
    def test_cli_json_matches_the_helper(self, capsys):
        assert service_main(["backends", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        for name, row in by_name.items():
            assert row["flags"] == capability_flags(backend_for(name))

    def test_v1_backends_matches_the_helper(self):
        with AnalysisServer(workers=1) as server:
            response = server.api.handle("GET", "/v1/backends")
            assert response.status == 200
            rows = json.loads(response.body)["backends"]
        assert rows == backend_descriptions()
        for row in rows:
            assert row["flags"] == capability_flags(backend_for(row["name"]))
