"""Compile plane of the ``cc`` backend: caching, eviction, recovery,
compiler discovery and graceful degradation.

Everything runs against a per-test cache directory (autouse fixture),
so these tests never touch — or depend on — the user's real kernel
cache, and counters always start from zero.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import ccore
from repro.engine.backends import backend_for, resolve_backend
from repro.exceptions import ConfigError
from repro.gallery import fig1_example, modem

HAVE_CC = ccore.compiler_probe()[0] is not None
needs_cc = pytest.mark.skipif(
    not HAVE_CC, reason=f"no C compiler: {ccore.compiler_probe()[1]}"
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    """Point the kernel cache at a throwaway directory and zero the
    counters; restore the module's default state afterwards."""
    ccore.configure(cache_dir=tmp_path / "kernels")
    ccore.reset(counters=True)
    yield tmp_path / "kernels"
    ccore.configure(cache_dir=None, max_bytes=None)
    ccore.reset(counters=True)


def probe(graph, capacities):
    backend = backend_for("cc")
    return backend.evaluate_batch(graph, [capacities], None)[0]


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------


@needs_cc
def test_second_run_is_all_cache_hits():
    """The acceptance criterion: a repeated run compiles nothing."""
    graph = fig1_example()
    first = probe(graph, {"alpha": 4, "beta": 2})
    assert ccore.telemetry.counters["cc_compiles"] == 1
    assert "cc_cache_hits" not in ccore.telemetry.counters

    # Drop the in-process handles (as a new process would) but keep the
    # disk cache and counters.
    ccore.reset()
    second = probe(fig1_example(), {"alpha": 4, "beta": 2})
    assert second == first
    assert ccore.telemetry.counters["cc_compiles"] == 1  # unchanged
    assert ccore.telemetry.counters["cc_cache_hits"] == 1


@needs_cc
def test_in_process_handle_cache_skips_disk():
    graph = fig1_example()
    probe(graph, {"alpha": 4, "beta": 2})
    probe(graph, {"alpha": 5, "beta": 3})
    counters = ccore.telemetry.counters
    assert counters["cc_compiles"] == 1
    assert "cc_cache_hits" not in counters  # second probe reused the handle


@needs_cc
def test_cache_key_covers_observe_and_version(monkeypatch):
    graph = fig1_example()
    base = ccore.cache_key(graph, "c")
    assert ccore.cache_key(graph, "b") != base
    assert ccore.cache_key(fig1_example(), "c") == base  # content-addressed
    from repro.codegen import cgen

    monkeypatch.setattr(cgen, "CODEGEN_VERSION", "cc-test-bump")
    assert ccore.cache_key(graph, "c") != base


@needs_cc
def test_cache_dir_resolution(monkeypatch, tmp_path):
    # configure() override wins over everything.
    assert ccore.cache_dir() == tmp_path / "kernels"
    ccore.configure(cache_dir=None)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert ccore.cache_dir() == tmp_path / "env" / "cc-kernels"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert ccore.cache_dir() == tmp_path / "xdg" / "repro" / "cc-kernels"


# ---------------------------------------------------------------------------
# Hygiene: eviction + corrupt-entry recovery
# ---------------------------------------------------------------------------


@needs_cc
def test_lru_eviction_is_size_bounded(isolated_cache):
    probe(fig1_example(), {"alpha": 4, "beta": 2})
    so = next(isolated_cache.glob("*.so"))
    pair_size = so.stat().st_size + so.with_suffix(".c").stat().st_size
    # Room for roughly one pair: compiling a second graph must evict
    # the first (LRU), never the entry just stored.
    ccore.configure(cache_dir=isolated_cache, max_bytes=pair_size + 1024)
    os.utime(so, (1, 1))  # make the first entry unambiguously oldest
    probe(modem(), dict.fromkeys(modem().channel_names, 4))
    assert ccore.telemetry.counters["cc_cache_evictions"] == 1
    assert not so.exists()
    assert len(list(isolated_cache.glob("*.so"))) == 1


@needs_cc
def test_corrupt_cache_entry_recovers(isolated_cache):
    """A truncated/garbage shared object (as a crashed writer or disk
    fault would leave behind) is dropped and recompiled, not fatal."""
    graph = fig1_example()
    key = ccore.cache_key(graph, "c")
    isolated_cache.mkdir(parents=True)
    (isolated_cache / f"{key}.so").write_bytes(b"\x7fELF not really")
    result = probe(graph, {"alpha": 4, "beta": 2})
    assert str(result.throughput) == "1/7"
    counters = ccore.telemetry.counters
    assert counters["cc_cache_corrupt"] == 1
    assert counters["cc_cache_hits"] == 1  # the lookup that found garbage
    assert counters["cc_compiles"] == 1  # the recovery compile


@needs_cc
def test_foreign_binary_entry_recovers(isolated_cache):
    """A *valid* shared object for the wrong graph under the key (hash
    collision, botched sync) fails the shape handshake and recompiles."""
    import shutil as _shutil

    other = modem()
    probe(other, dict.fromkeys(other.channel_names, 4))  # a real kernel
    foreign = next(isolated_cache.glob("*.so"))
    graph = fig1_example()
    key = ccore.cache_key(graph, "c")
    _shutil.copy2(foreign, isolated_cache / f"{key}.so")
    ccore.reset(counters=True)
    result = probe(graph, {"alpha": 4, "beta": 2})
    assert str(result.throughput) == "1/7"
    counters = ccore.telemetry.counters
    assert counters["cc_cache_corrupt"] == 1
    assert counters["cc_compiles"] == 1


# ---------------------------------------------------------------------------
# Degradation without a compiler
# ---------------------------------------------------------------------------


@pytest.fixture
def broken_cc(monkeypatch):
    """A host whose $CC resolves but cannot compile anything."""
    monkeypatch.setenv("CC", "/bin/false")
    ccore.reset()
    yield
    ccore.reset()


def test_broken_cc_reports_unavailable(broken_cc):
    reason = ccore.availability()
    assert reason is not None
    assert "/bin/false" in reason
    assert ccore.telemetry.counters["cc_compile_failures"] == 1


def test_auto_falls_back_when_cc_broken(broken_cc):
    assert resolve_backend("auto") == "batch-numpy"


def test_explicit_cc_raises_actionable_error(broken_cc):
    from repro.runtime.config import ExplorationConfig

    with pytest.raises(ConfigError, match="unavailable"):
        ExplorationConfig(backend="cc")
    with pytest.raises(ConfigError, match="'cc' is unavailable"):
        resolve_backend("cc")


def test_broken_cc_exploration_still_completes(broken_cc):
    """backend='auto' explorations finish on the numpy backend with the
    failure visible only in telemetry."""
    from repro.buffers.explorer import explore_design_space
    from repro.runtime.config import ExplorationConfig

    result = explore_design_space(
        fig1_example(), "c", config=ExplorationConfig(backend="auto", batch=4)
    )
    assert [(p.size, str(p.throughput)) for p in result.front] == [
        (6, "1/7"),
        (8, "1/6"),
        (9, "1/5"),
        (10, "1/4"),
    ]
    assert ccore.telemetry.counters["cc_compile_failures"] == 1


def test_missing_compiler_reason_names_candidates(monkeypatch):
    monkeypatch.setenv("CC", "definitely-not-a-compiler-xyz")
    ccore.reset()
    reason = ccore.availability()
    assert "not on PATH" in reason
    ccore.reset()


# ---------------------------------------------------------------------------
# Resolution with a working compiler
# ---------------------------------------------------------------------------


@needs_cc
def test_auto_prefers_cc():
    assert resolve_backend("auto") == "cc"
    # The reference engine still needs the blocking-instrumented backend.
    assert resolve_backend("auto", engine="reference") == "reference"
    assert resolve_backend(None) == "fastcore"
