"""Backend-conformance harness: every registered probe backend is exact.

The :mod:`repro.engine.backends` registry is the seam future
accelerated kernels (cffi, GPU, remote) plug into.  The contract is
strict: for every capacity vector a backend must return the *same*
``EvalResult`` — throughput as an exact :class:`~fractions.Fraction`,
``states_stored``, ``deadlocked`` — as the instrumented reference
executor, and explorations driven through it must produce bit-identical
Pareto fronts, witnesses and (normalised) stats.

Everything here is parametrised over :func:`backend_names`, so a new
backend inherits the whole suite by calling
:func:`~repro.engine.backends.register_backend` — no test edits needed.
"""

from __future__ import annotations

import random
from dataclasses import replace
from fractions import Fraction

import pytest

from repro.buffers.explorer import explore_design_space
from repro.csdf.executor import CSDFExecutor
from repro.csdf.graph import from_sdf
from repro.engine.backends import (
    EvalResult,
    backend_availability,
    backend_for,
    backend_names,
)
from repro.gallery import (
    fig1_example,
    fig6_example,
    h263_decoder,
    modem,
    random_consistent_graph,
    sample_rate_converter,
    satellite_receiver,
)

# Host-unavailable backends (e.g. "cc" without a C compiler) skip with
# the availability reason instead of silently vanishing from the matrix.
BACKENDS = [
    pytest.param(
        name,
        marks=()
        if (reason := backend_availability(backend_for(name))) is None
        else pytest.mark.skip(reason=f"backend {name!r} unavailable: {reason}"),
    )
    for name in backend_names()
]

#: Gallery cases: name -> (graph factory, heavy?).  Heavy graphs only
#: run in the full (non-tier-1) CI job.
GALLERY = {
    "fig1": (fig1_example, False),
    "fig6": (fig6_example, False),
    "modem": (modem, False),
    "samplerate": (sample_rate_converter, False),
    "satellite": (satellite_receiver, True),
    "h263": (lambda: h263_decoder(blocks=9), False),
}

GALLERY_CASES = [
    pytest.param(name, marks=pytest.mark.slow if heavy else ())
    for name, (_factory, heavy) in GALLERY.items()
]


def probe_vectors(graph, count=8):
    """A deterministic capacity wave exercising the interesting regimes.

    Includes the per-channel structural minimum (often deadlocking),
    comfortable vectors and a duplicate lane.  Every lane bounds every
    channel: leaving a channel unbounded can make the self-timed
    execution aperiodic (tokens accumulate without revisiting a state),
    which no engine can finish — the unbounded convention is covered by
    :func:`test_unbounded_channels` on a feedback-bounded graph instead.
    """
    channels = sorted(graph.channel_names)
    floor = {
        name: max(
            graph.channels[name].initial_tokens,
            max(graph.channels[name].production, graph.channels[name].consumption),
        )
        for name in channels
    }
    comfortable = {
        name: max(
            graph.channels[name].initial_tokens,
            graph.channels[name].production + graph.channels[name].consumption,
        )
        for name in channels
    }
    vectors = [dict(floor), dict(comfortable)]
    for k in range(1, count - 2):
        vector = dict(comfortable)
        vector[channels[k % len(channels)]] += k
        for i, name in enumerate(channels):
            vector[name] += (k + i) % 3
        vectors.append(vector)
    vectors.append(dict(comfortable))  # duplicate lane
    return vectors


@pytest.fixture(scope="module")
def reference_results():
    """Reference-backend results per gallery case, computed once."""
    cache = {}

    def resolve(name):
        if name not in cache:
            graph = GALLERY[name][0]()
            vectors = probe_vectors(graph)
            cache[name] = (
                graph,
                vectors,
                backend_for("reference").evaluate_batch(graph, vectors, None),
            )
        return cache[name]

    return resolve


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", GALLERY_CASES)
def test_eval_results_match_reference(backend_name, case, reference_results):
    """Every backend returns the reference EvalResults, lane for lane."""
    graph, vectors, expected = reference_results(case)
    backend = backend_for(backend_name)
    results = backend.evaluate_batch(graph, vectors, None)
    assert len(results) == len(expected)
    for got, want in zip(results, expected):
        assert isinstance(got, EvalResult)
        assert isinstance(got.throughput, Fraction)
        assert got.throughput == want.throughput
        assert got.states_stored == want.states_stored
        assert got.deadlocked == want.deadlocked
        # Blocking data is optional per backend, but never wrong.
        if got.space_blocked is not None:
            assert got.space_blocked == want.space_blocked
            assert got.space_deficits == want.space_deficits


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_explicit_observe_matches_reference(backend_name):
    """Observing a non-default actor agrees across backends too."""
    graph = fig1_example()
    vectors = probe_vectors(graph, count=5)
    observe = graph.actor_names[0]
    expected = backend_for("reference").evaluate_batch(graph, vectors, observe)
    results = backend_for(backend_name).evaluate_batch(graph, vectors, observe)
    assert [(r.throughput, r.states_stored, r.deadlocked) for r in results] == [
        (r.throughput, r.states_stored, r.deadlocked) for r in expected
    ]


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_empty_wave_is_empty(backend_name):
    assert backend_for(backend_name).evaluate_batch(fig1_example(), [], None) == []


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_unbounded_channels(backend_name):
    """Channels omitted from the mapping are unbounded.

    The feedback edge keeps the token population finite, so the run
    still reaches a periodic phase and all backends agree on it.
    """
    from repro.graph.builder import GraphBuilder

    graph = (
        GraphBuilder("feedback")
        .actors({"p": 2, "q": 3})
        .channel("p", "q", 1, 1, name="data")
        .channel("q", "p", 1, 1, initial_tokens=2, name="credit")
        .build()
    )
    waves = [
        {"credit": 2},  # "data" unbounded
        {"data": 2, "credit": 2},
        {},  # everything unbounded
    ]
    expected = backend_for("reference").evaluate_batch(graph, waves, None)
    results = backend_for(backend_name).evaluate_batch(graph, waves, None)
    assert [(r.throughput, r.states_stored, r.deadlocked) for r in results] == [
        (r.throughput, r.states_stored, r.deadlocked) for r in expected
    ]


def normalised(stats):
    """ExplorationStats minus the how-probes-ran dimensions.

    Wall time, the backend label and pool health are allowed to differ
    between backends; every counter that feeds papers' tables (probe
    counts, cache hits, prunes, oracle and batching behaviour) is not.
    """
    return replace(
        stats,
        wall_time_s=0.0,
        backend=None,
        pool_restarts=0,
        pool_fallback_reason=None,
        parallel_batches=0,
    )


EXPLORE_CASES = [
    pytest.param("fig1", "divide", marks=()),
    pytest.param("fig6", "dependency", marks=()),
    pytest.param("samplerate", "divide", marks=pytest.mark.slow),
]


def _explore(case, strategy, backend):
    from repro.runtime.config import ExplorationConfig

    return explore_design_space(
        GALLERY[case][0](),
        strategy=strategy,
        config=ExplorationConfig(backend=backend, batch=8, bounds=True),
    )


@pytest.fixture(scope="module")
def expected_exploration():
    """Reference-backend exploration per case, computed once per module."""
    cache = {}

    def resolve(case, strategy):
        if (case, strategy) not in cache:
            cache[case, strategy] = _explore(case, strategy, "reference")
        return cache[case, strategy]

    return resolve


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case,strategy", EXPLORE_CASES)
def test_exploration_matches_reference_backend(
    backend_name, case, strategy, expected_exploration
):
    """Fronts, witnesses and normalised stats are backend-independent.

    Batching is driven by ``config.batch`` alone (loop backends simply
    loop within one call), so at a fixed config the wave structure —
    and with it every exploration counter — is identical no matter
    which backend executes the lanes.  The reference backend's own row
    doubles as a determinism check (two independent runs must agree).
    """
    expected = expected_exploration(case, strategy)
    result = _explore(case, strategy, backend_name)
    assert [(p.size, p.throughput, p.witnesses) for p in result.front] == [
        (p.size, p.throughput, p.witnesses) for p in expected.front
    ]
    assert result.max_throughput == expected.max_throughput
    assert normalised(result.stats) == normalised(expected.stats)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("seed", [7, 23, 2006])
def test_random_graphs_match_reference(backend_name, seed):
    """Conformance holds beyond the gallery: random consistent graphs."""
    graph = random_consistent_graph(
        random.Random(seed), max_actors=4, max_repetition=3, max_rate_factor=1
    )
    vectors = probe_vectors(graph, count=6)
    expected = backend_for("reference").evaluate_batch(graph, vectors, None)
    results = backend_for(backend_name).evaluate_batch(graph, vectors, None)
    assert [(r.throughput, r.states_stored, r.deadlocked) for r in results] == [
        (r.throughput, r.states_stored, r.deadlocked) for r in expected
    ]


# -- CSDF cases ---------------------------------------------------------
#
# Probe backends take SDF graphs; the CSDF executor covers the
# cyclo-static superset.  A single-phase CSDF lift of an SDF graph is
# semantically the *same* graph, so every backend must agree with
# CSDFExecutor on the lifted gallery — anchoring the backend seam to
# the CSDF layer's independent implementation.

CSDF_CASES = [
    pytest.param("fig1", marks=()),
    pytest.param("fig6", marks=()),
    pytest.param("modem", marks=pytest.mark.slow),
]


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", CSDF_CASES)
def test_csdf_lift_agrees(backend_name, case):
    graph = GALLERY[case][0]()
    lifted = from_sdf(graph)
    vectors = probe_vectors(graph, count=5)
    results = backend_for(backend_name).evaluate_batch(graph, vectors, None)
    for capacities, result in zip(vectors, results):
        csdf = CSDFExecutor(lifted, capacities).run()
        assert result.throughput == csdf.throughput
        assert result.deadlocked == csdf.deadlocked
