"""Unit tests for the process-pool prober."""

import pytest

from repro.buffers.bounds import lower_bound_distribution
from repro.engine.executor import Executor
from repro.engine.parallel import ParallelProber, evaluate_raw
from repro.gallery import fig1_example


@pytest.fixture()
def graph():
    return fig1_example()


BATCH = [
    {"alpha": 2, "beta": 2},
    {"alpha": 4, "beta": 2},
    {"alpha": 3, "beta": 3},
    {"alpha": 4, "beta": 6},
]


def expected(graph):
    return [evaluate_raw(graph, dict(c), "c") for c in BATCH]


def test_evaluate_raw_matches_executor(graph):
    throughput, states, blocked, deficits = evaluate_raw(graph, {"alpha": 4, "beta": 2}, "c")
    result = Executor(graph, {"alpha": 4, "beta": 2}, "c", track_blocking=True).run()
    assert throughput == result.throughput
    assert states == result.states_stored
    assert set(blocked) == set(result.space_blocked)
    assert dict(deficits) == dict(result.space_deficits)


def test_serial_prober_runs_inline(graph):
    prober = ParallelProber(graph, "c", workers=1)
    assert not prober.parallel
    assert prober.map(BATCH) == expected(graph)
    assert prober._pool is None  # no processes were ever spawned
    prober.close()


def test_parallel_prober_preserves_input_order(graph):
    with ParallelProber(graph, "c", workers=2) as prober:
        assert prober.parallel
        results = prober.map(BATCH)
        assert results == expected(graph)
        assert prober.batches == 1
        assert prober.tasks == len(BATCH)
        # A second batch reuses the warm pool.
        assert prober.map(BATCH) == results
        assert prober.batches == 2


def test_single_item_batches_stay_inline(graph):
    with ParallelProber(graph, "c", workers=2) as prober:
        assert prober.map(BATCH[:1]) == expected(graph)[:1]
        assert prober.batches == 0  # too small to be worth shipping out


def test_empty_batch(graph):
    prober = ParallelProber(graph, "c", workers=2)
    assert prober.map([]) == []
    prober.close()


def test_close_is_idempotent(graph):
    prober = ParallelProber(graph, "c", workers=2)
    prober.map(BATCH)
    prober.close()
    prober.close()
    # A closed prober still answers (inline or by respawning).
    assert prober.map(BATCH) == expected(graph)
    prober.close()


def test_broken_pool_falls_back_inline(graph):
    prober = ParallelProber(graph, "c", workers=2)
    prober._pool_failed = True  # simulate an unspawnable pool
    assert not prober.parallel
    assert prober.map(BATCH) == expected(graph)
    assert prober.batches == 0
    prober.close()


def test_prober_on_lower_bound_distribution(graph):
    lower = lower_bound_distribution(graph)
    with ParallelProber(graph, "c", workers=2) as prober:
        [(throughput, _states, _blocked, _deficits)] = prober.map([dict(lower)])
        assert throughput == Executor(graph, lower, "c").run().throughput
