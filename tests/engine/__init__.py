"""Test package."""
