"""Engine behaviour around initial tokens and multi-channel topologies."""

from fractions import Fraction

import pytest

from repro.engine.executor import Executor, execute
from repro.graph.builder import GraphBuilder
from tests.util import assert_valid_schedule


class TestInitialTokens:
    def test_tokens_enable_immediate_downstream_start(self):
        graph = (
            GraphBuilder()
            .actors({"a": 3, "b": 1})
            .channel("a", "b", 1, 1, initial_tokens=1, name="c")
            .build()
        )
        result = execute(graph, {"c": 2}, "b", record_schedule=True)
        # b can fire at t=0 from the initial token, before a finishes.
        assert result.schedule.start_times("b")[0] == 0

    def test_tokens_pipeline_a_feedback_cycle(self):
        def cycle(tokens):
            return (
                GraphBuilder()
                .actors({"a": 2, "b": 2})
                .channel("a", "b", 1, 1, name="f")
                .channel("b", "a", 1, 1, initial_tokens=tokens, name="r")
                .build()
            )

        slow = execute(cycle(1), {"f": 1, "r": 1}, "b").throughput
        fast = execute(cycle(2), {"f": 2, "r": 2}, "b").throughput
        assert slow == Fraction(1, 4)
        assert fast == Fraction(1, 2)

    def test_initial_tokens_counted_against_capacity(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 1, initial_tokens=2, name="c")
            .build()
        )
        # Capacity 2 is full of initial tokens: a blocks until b drains.
        result = execute(graph, {"c": 2}, "b", record_schedule=True)
        assert result.schedule.start_times("a")[0] >= 1
        assert result.throughput == 1


class TestMultiChannelTopologies:
    def test_parallel_channels_between_same_actors(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 1, name="x")
            .channel("a", "b", 2, 2, name="y")
            .build()
        )
        result = execute(graph, {"x": 1, "y": 2}, "b", record_schedule=True)
        # Tight capacities serialise a and b into strict alternation.
        assert result.throughput == Fraction(1, 2)
        assert_valid_schedule(graph, result.schedule, {"x": 1, "y": 2})

    def test_opposite_channels_form_cycle(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 1, name="f")
            .channel("b", "a", 1, 1, initial_tokens=1, name="r")
            .build()
        )
        result = execute(graph, {"f": 1, "r": 1}, "b")
        assert result.throughput == Fraction(1, 2)

    def test_fan_out_requires_space_on_all_outputs(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "fast": 1, "slow": 4})
            .channel("a", "fast", 1, 1, name="x")
            .channel("a", "slow", 1, 1, name="y")
            .build()
        )
        # a needs space on both x and y; slow's backlog (4 steps) plus
        # a's own firing (1 step) throttles the whole fan-out to 1/5.
        result = execute(graph, {"x": 1, "y": 1}, "fast")
        assert result.throughput == Fraction(1, 5)

    def test_fan_in_requires_tokens_on_all_inputs(self):
        graph = (
            GraphBuilder()
            .actors({"fast": 1, "slow": 3, "join": 1})
            .channel("fast", "join", 1, 1, name="x")
            .channel("slow", "join", 1, 1, name="y")
            .build()
        )
        result = execute(graph, {"x": 2, "y": 2}, "join")
        assert result.throughput == Fraction(1, 3)


class TestStateAccess:
    def test_state_layout_matches_definition_5(self, fig1):
        executor = Executor(fig1, {"alpha": 4, "beta": 2}, "c")
        executor.run()
        state = executor.state()
        assert len(state.clocks) == fig1.num_actors
        assert len(state.tokens) == fig1.num_channels

    def test_merged_disjoint_graphs_run_independently(self, fig1):
        from repro.graph.graph import merge_graphs

        other = fig1.copy("other")
        merged = merge_graphs([fig1, other])
        caps = {}
        for prefix in ("example", "other"):
            caps[f"{prefix}.alpha"] = 4
            caps[f"{prefix}.beta"] = 2
        assert execute(merged, caps, "example.c").throughput == Fraction(1, 7)
        assert execute(merged, caps, "other.c").throughput == Fraction(1, 7)
