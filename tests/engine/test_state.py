"""Unit tests for repro.engine.state."""

from repro.engine.state import ReducedState, SDFState


class TestSDFState:
    def test_as_tuple_layout(self):
        state = SDFState((1, 0, 2), (4, 0))
        assert state.as_tuple() == (1, 0, 2, 4, 0)

    def test_is_idle(self):
        assert SDFState((0, 0), (3, 1)).is_idle
        assert not SDFState((0, 1), (0, 0)).is_idle

    def test_hashable_and_equal(self):
        assert SDFState((1,), (2,)) == SDFState((1,), (2,))
        assert hash(SDFState((1,), (2,))) == hash(SDFState((1,), (2,)))
        assert SDFState((1,), (2,)) != SDFState((1,), (3,))

    def test_str_matches_definition_5(self):
        assert str(SDFState((1, 0), (2,))) == "(1, 0, 2)"


class TestReducedState:
    def test_distance_dimension_appended(self):
        reduced = ReducedState(SDFState((1, 0), (2, 2)), 9)
        assert str(reduced) == "(1, 0, 2, 2, 9)"

    def test_default_single_firing(self):
        assert ReducedState(SDFState((0,), (0,)), 5).firings == 1
