"""Differential tests: fast event-calendar kernel vs reference executor.

The fast kernel must be *bit-for-bit* equivalent to the reference
``Executor`` on uninstrumented runs — the tests below therefore compare
full :class:`ExecutionResult` dataclasses (throughput, transient/cycle
state counts, ``states_stored``, ``first_firing_time``, deadlock
classification, and the reduced states themselves), not just the
throughput value.
"""

import pytest

from repro.buffers.bounds import lower_bound_distribution
from repro.engine.executor import Executor, execute
from repro.engine.fastcore import (
    ENGINES,
    FastKernel,
    fast_execute,
    kernel_for,
    resolve_engine,
    unsupported_options,
)
from repro.exceptions import EngineError, GraphError
from repro.gallery import (
    fig1_example,
    fig6_example,
    h263_decoder,
    modem,
    sample_rate_converter,
    satellite_receiver,
)

GALLERY = {
    "fig1": fig1_example,
    "fig6": fig6_example,
    "modem": modem,
    "samplerate": sample_rate_converter,
    "satellite": satellite_receiver,
    "h263-small": lambda: h263_decoder(blocks=9),
}


def _capacity_sweep(graph):
    """Lower bound + slack sweep, plus deadlock-prone tightened vectors."""
    lower = lower_bound_distribution(graph)
    for slack in (0, 1, 2, 5):
        yield {name: lower[name] + slack for name in graph.channel_names}
    for squeeze in (1, 2):
        yield {
            name: max(graph.channels[name].initial_tokens, lower[name] - squeeze)
            for name in graph.channel_names
        }


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_gallery_bitwise_equivalent_across_capacity_sweep(name):
    graph = GALLERY[name]()
    kernel = FastKernel(graph)
    for caps in _capacity_sweep(graph):
        reference = Executor(graph, caps).run()
        assert kernel.run(caps) == reference


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_gallery_equivalent_under_explicit_observe(name):
    graph = GALLERY[name]()
    observe = graph.actor_names[0]
    lower = lower_bound_distribution(graph)
    caps = {n: lower[n] + 1 for n in graph.channel_names}
    assert FastKernel(graph, observe).run(caps) == Executor(graph, caps, observe).run()


def test_fast_execute_equals_execute_reference(fig1):
    caps = {"alpha": 4, "beta": 2}
    assert fast_execute(fig1, caps, "c") == execute(fig1, caps, "c", engine="reference")
    assert execute(fig1, caps, "c", engine="fast") == execute(fig1, caps, "c", engine="auto")


# -- engine resolution --------------------------------------------------


def test_resolve_engine_auto_picks_fast_when_uninstrumented():
    assert resolve_engine("auto", {}) == "fast"
    assert resolve_engine("auto", None) == "fast"
    assert resolve_engine("auto", {"max_instants": 100, "stall_threshold": 5}) == "fast"
    # Falsy instrumentation flags do not force the reference engine.
    assert resolve_engine("auto", {"record_schedule": False, "processors": None}) == "fast"
    assert resolve_engine("auto", {"mode": "event"}) == "fast"


@pytest.mark.parametrize(
    "options",
    [
        {"record_schedule": True},
        {"track_blocking": True},
        {"track_occupancy": True},
        {"processors": {"a": "p0"}},
        {"mode": "tick"},
    ],
)
def test_resolve_engine_auto_falls_back_on_instrumentation(options):
    assert resolve_engine("auto", options) == "reference"
    assert resolve_engine("reference", options) == "reference"
    with pytest.raises(EngineError):
        resolve_engine("fast", options)


def test_resolve_engine_rejects_unknown_name():
    with pytest.raises(EngineError, match="unknown engine"):
        resolve_engine("turbo")
    assert set(ENGINES) == {"auto", "fast", "reference"}


def test_unsupported_options_lists_blockers_sorted():
    blockers = unsupported_options(
        {"track_blocking": True, "record_schedule": True, "max_instants": 7}
    )
    assert blockers == ["record_schedule", "track_blocking"]
    assert unsupported_options({"mode": "tick"}) == ["mode='tick'"]


def test_execute_auto_keeps_instrumentation(fig1):
    result = execute(fig1, {"alpha": 4, "beta": 2}, "c", record_schedule=True)
    assert result.schedule is not None  # reference fallback produced it


def test_execute_fast_with_instrumentation_raises(fig1):
    with pytest.raises(EngineError, match="does not support record_schedule"):
        execute(fig1, {"alpha": 4, "beta": 2}, "c", engine="fast", record_schedule=True)


# -- kernel compilation and caching -------------------------------------


def test_kernel_for_reuses_compiled_kernel(fig1):
    assert kernel_for(fig1, "c") is kernel_for(fig1, "c")
    assert kernel_for(fig1, "a") is not kernel_for(fig1, "c")


def test_kernel_cache_invalidated_by_structural_growth(fig1):
    before = kernel_for(fig1, "c")
    fig1.add_actor("extra", 1)
    fig1.add_channel("c", "extra", 1, 1)
    after = kernel_for(fig1, "extra")
    assert after is not before
    # The old observe key was recompiled too (shape changed).
    assert kernel_for(fig1, "c") is not before


def test_kernel_rejects_empty_graph():
    from repro.graph.graph import SDFGraph

    with pytest.raises(GraphError, match="empty graph"):
        FastKernel(SDFGraph("empty"))


def test_kernel_rejects_unknown_observe(fig1):
    with pytest.raises(GraphError, match="unknown observed actor"):
        FastKernel(fig1, "nope")


def test_kernel_run_is_repeatable(fig1):
    kernel = FastKernel(fig1, "c")
    caps = {"alpha": 4, "beta": 2}
    assert kernel.run(caps) == kernel.run(caps)
    # A different distribution on the same kernel stays independent.
    wider = kernel.run({"alpha": 7, "beta": 3})
    assert wider.throughput > kernel.run(caps).throughput
