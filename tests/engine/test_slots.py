"""The hot per-state dataclasses carry ``__slots__`` (memory and
attribute-safety test for the simulation fast path)."""

import pytest

from repro.engine.executor import _ActorInfo
from repro.engine.state import ReducedState, SDFState


@pytest.mark.parametrize(
    "instance",
    [
        SDFState((1, 0), (2,)),
        ReducedState(SDFState((0,), (1,)), 3),
        _ActorInfo("a", 2),
    ],
    ids=["SDFState", "ReducedState", "_ActorInfo"],
)
def test_no_per_instance_dict(instance):
    assert not hasattr(instance, "__dict__")
    with pytest.raises((AttributeError, TypeError)):
        instance.unexpected_attribute = 1


def test_slots_do_not_change_identity_semantics():
    a = SDFState((1,), (2,))
    b = SDFState((1,), (2,))
    assert a == b and hash(a) == hash(b)
    assert ReducedState(a, 4, 2) == ReducedState(b, 4, 2)
    assert str(ReducedState(a, 4)) == "(1, 2, 4)"


def test_slots_save_memory_over_dict_layout():
    import sys

    state = SDFState((1, 2, 3), (4, 5))

    class DictState:
        def __init__(self, clocks, tokens):
            self.clocks = clocks
            self.tokens = tokens

    boxed = DictState((1, 2, 3), (4, 5))
    assert sys.getsizeof(state) < sys.getsizeof(boxed) + sys.getsizeof(boxed.__dict__)
