"""Equivalence of the tick-driven and event-driven execution modes."""

import random

import pytest

from repro.engine.executor import Executor
from repro.gallery import fig1_example, fig6_example, random_consistent_graph
from repro.graph.builder import GraphBuilder


def runs_agree(graph, capacities, observe=None):
    tick = Executor(graph, capacities, observe, mode="tick", record_schedule=True).run()
    event = Executor(graph, capacities, observe, mode="event", record_schedule=True).run()
    assert tick.throughput == event.throughput
    assert tick.deadlocked == event.deadlocked
    assert tick.first_firing_time == event.first_firing_time
    assert tick.cycle_duration == event.cycle_duration
    assert tick.schedule.events == event.schedule.events
    return tick


class TestModeEquivalence:
    def test_fig1_running_distribution(self):
        runs_agree(fig1_example(), {"alpha": 4, "beta": 2}, "c")

    def test_fig1_maximal_distribution(self):
        runs_agree(fig1_example(), {"alpha": 8, "beta": 2}, "c")

    def test_fig1_deadlock(self):
        result = runs_agree(fig1_example(), {"alpha": 3, "beta": 2}, "c")
        assert result.deadlocked

    def test_fig6(self):
        graph = fig6_example()
        caps = {name: 1 for name in graph.channel_names}
        runs_agree(graph, caps, "d")

    def test_large_execution_times(self):
        graph = (
            GraphBuilder()
            .actors({"a": 50, "b": 70})
            .channel("a", "b", 2, 3)
            .build()
        )
        runs_agree(graph, {"ch0": 6}, "b")

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = random_consistent_graph(rng)
        capacities = {
            channel.name: max(
                channel.initial_tokens,
                channel.production + channel.consumption + rng.randint(0, 3),
            )
            for channel in graph.channels.values()
        }
        runs_agree(graph, capacities)
