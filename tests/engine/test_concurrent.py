"""Auto-concurrent execution (extension X12)."""

import random

from fractions import Fraction

import pytest

from repro.engine.concurrent import ConcurrentExecutor
from repro.engine.executor import Executor
from repro.exceptions import CapacityError, EngineError
from repro.gallery.random_graphs import random_consistent_graph
from repro.graph.builder import GraphBuilder
from repro.graph.graph import SDFGraph
from tests.util import assert_valid_schedule

CAPS_4_2 = {"alpha": 4, "beta": 2}


class TestOverlappingFirings:
    def test_pipelined_consumer_beats_serialised(self):
        """A slow consumer with enough buffering overlaps its own
        firings; the serialised engine cannot.  The source is pinned to
        one firing at a time with a one-token self-loop so the effect
        is isolated to the consumer."""
        graph = (
            GraphBuilder()
            .actors({"src": 1, "snk": 4})
            .channel("src", "snk", 1, 1, name="c")
            .self_loop("src", tokens=1, name="s")
            .build()
        )
        caps = {"c": 8, "s": 2}
        serialised = Executor(graph, caps, "snk").run().throughput
        concurrent = ConcurrentExecutor(graph, caps, "snk").run().throughput
        assert serialised == Fraction(1, 4)
        # snk keeps four firings in flight, consuming at the source rate.
        assert concurrent == Fraction(1, 1)

    def test_everything_overlaps_in_bulk(self):
        """Without any serialisation, both actors batch up to the
        channel capacity: 8 firings per 5 steps."""
        graph = (
            GraphBuilder()
            .actors({"src": 1, "snk": 4})
            .channel("src", "snk", 1, 1, name="c")
            .build()
        )
        concurrent = ConcurrentExecutor(graph, {"c": 8}, "snk").run().throughput
        assert concurrent == Fraction(8, 5)

    def test_fig1_with_auto_concurrency(self, fig1):
        # b may overlap its two firings per iteration: c is no longer
        # capped at 1/4.
        concurrent = ConcurrentExecutor(fig1, {"alpha": 12, "beta": 4}, "c").run()
        serialised = Executor(fig1, {"alpha": 12, "beta": 4}, "c").run()
        assert serialised.throughput == Fraction(1, 4)
        assert concurrent.throughput > serialised.throughput

    def test_never_slower_than_serialised(self, fig1):
        for caps in (CAPS_4_2, {"alpha": 6, "beta": 2}, {"alpha": 8, "beta": 4}):
            fast = ConcurrentExecutor(fig1, caps, "c").run().throughput
            slow = Executor(fig1, caps, "c").run().throughput
            assert fast >= slow

    def test_schedule_valid_except_overlap(self, fig1):
        result = ConcurrentExecutor(fig1, CAPS_4_2, "c", record_schedule=True).run()
        schedule = result.schedule
        # Firing durations still match execution times.
        for event in schedule.events:
            assert event.duration == fig1.actor(event.actor).execution_time


class TestSelfLoopEquivalence:
    """The classical result: one-token rate-1 self-loops serialise an
    auto-concurrent execution back to the paper's model."""

    @staticmethod
    def with_self_loops(graph: SDFGraph) -> SDFGraph:
        clone = graph.copy(graph.name + "-looped")
        for name in graph.actor_names:
            clone.add_channel(name, name, 1, 1, 1, name=f"__loop_{name}")
        return clone

    @pytest.mark.parametrize("seed", range(8))
    def test_equivalence_on_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = random_consistent_graph(rng)
        caps = {
            channel.name: max(
                channel.initial_tokens,
                channel.production + channel.consumption + rng.randint(0, 3),
            )
            for channel in graph.channels.values()
        }
        looped = self.with_self_loops(graph)
        looped_caps = dict(caps)
        for name in graph.actor_names:
            looped_caps[f"__loop_{name}"] = 2  # token + claim space

        serialised = Executor(graph, caps).run()
        concurrent = ConcurrentExecutor(looped, looped_caps, serialised.observe).run()
        assert concurrent.throughput == serialised.throughput
        assert concurrent.deadlocked == serialised.deadlocked

    def test_equivalence_on_fig1(self, fig1):
        looped = self.with_self_loops(fig1)
        caps = dict(CAPS_4_2, __loop_a=2, __loop_b=2, __loop_c=2)
        assert ConcurrentExecutor(looped, caps, "c").run().throughput == Fraction(1, 7)


class TestModesAndGuards:
    def test_tick_event_equivalent(self, fig1):
        tick = ConcurrentExecutor(fig1, CAPS_4_2, "c", mode="tick").run()
        event = ConcurrentExecutor(fig1, CAPS_4_2, "c", mode="event").run()
        assert tick.throughput == event.throughput
        assert tick.first_firing_time == event.first_firing_time

    def test_deterministic(self, fig1):
        runs = [ConcurrentExecutor(fig1, CAPS_4_2, "c").run() for _ in range(2)]
        assert runs[0].throughput == runs[1].throughput
        assert runs[0].reduced_states == runs[1].reduced_states

    def test_deadlock_detection(self, fig1):
        result = ConcurrentExecutor(fig1, {"alpha": 3, "beta": 2}, "c").run()
        assert result.deadlocked
        assert result.throughput == 0

    def test_capacity_validation(self, fig1):
        with pytest.raises(CapacityError):
            ConcurrentExecutor(fig1, {"zz": 1})

    def test_unbounded_source_guard(self, fig1):
        # With auto-concurrency AND an unbounded channel, the source
        # would start infinitely many firings in one instant.
        with pytest.raises(EngineError):
            ConcurrentExecutor(fig1, {"beta": 2}, "c").run()

    def test_blocking_tracked(self, fig1):
        result = ConcurrentExecutor(
            fig1, {"alpha": 3, "beta": 2}, "c", track_blocking=True
        ).run()
        assert "alpha" in result.space_blocked
        assert result.space_deficits["alpha"] >= 1
