"""Processor-constrained execution (multiprocessor mapping extension)."""

from fractions import Fraction

import pytest

from repro.engine.executor import Executor
from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from tests.util import assert_valid_schedule


@pytest.fixture
def parallel_pair():
    """Two independent pipelines feeding one sink."""
    return (
        GraphBuilder("pair")
        .actors({"a": 2, "b": 2, "sink": 1})
        .channel("a", "sink", 1, 1, name="ca")
        .channel("b", "sink", 1, 1, name="cb")
        .build()
    )


CAPS = {"ca": 2, "cb": 2}


class TestProcessorConstraints:
    def test_unconstrained_runs_in_parallel(self, parallel_pair):
        result = Executor(parallel_pair, CAPS, "sink").run()
        assert result.throughput == Fraction(1, 2)

    def test_shared_processor_serialises(self, parallel_pair):
        result = Executor(
            parallel_pair, CAPS, "sink", processors={"a": "p0", "b": "p0"}
        ).run()
        # a and b alternate on one processor: sink gets a pair of
        # tokens every 4 steps instead of every 2.
        assert result.throughput == Fraction(1, 4)

    def test_distinct_processors_keep_parallelism(self, parallel_pair):
        result = Executor(
            parallel_pair, CAPS, "sink", processors={"a": "p0", "b": "p1"}
        ).run()
        assert result.throughput == Fraction(1, 2)

    def test_schedule_never_overlaps_on_one_processor(self, parallel_pair):
        result = Executor(
            parallel_pair,
            CAPS,
            "sink",
            processors={"a": "p0", "b": "p0"},
            record_schedule=True,
        ).run()
        assert_valid_schedule(parallel_pair, result.schedule, CAPS)
        events = [e for e in result.schedule.events if e.actor in ("a", "b")]
        events.sort(key=lambda e: e.start)
        for first, second in zip(events, events[1:]):
            assert second.start >= first.end

    def test_priority_is_insertion_order(self, parallel_pair):
        result = Executor(
            parallel_pair,
            CAPS,
            "sink",
            processors={"a": "p0", "b": "p0"},
            record_schedule=True,
        ).run()
        # At t=0 both are ready; a (earlier in insertion order) wins.
        first = min(result.schedule.events, key=lambda e: (e.start, e.end))
        assert first.actor == "a"

    def test_unknown_actor_rejected(self, parallel_pair):
        with pytest.raises(GraphError, match="unknown actor"):
            Executor(parallel_pair, CAPS, processors={"zz": "p0"})

    def test_deterministic(self, parallel_pair):
        runs = [
            Executor(
                parallel_pair, CAPS, "sink", processors={"a": "p0", "b": "p0"},
                record_schedule=True,
            ).run()
            for _ in range(2)
        ]
        assert runs[0].schedule.events == runs[1].schedule.events

    def test_single_processor_whole_graph(self, fig1):
        everything = {name: "cpu" for name in fig1.actor_names}
        result = Executor(fig1, {"alpha": 4, "beta": 2}, "c", processors=everything).run()
        # Fully serialised: slower than the 3-processor 1/7, not deadlocked.
        assert 0 < result.throughput < Fraction(1, 7)

    def test_tick_event_equivalence_with_processors(self, parallel_pair):
        shared = {"a": "p0", "b": "p0"}
        tick = Executor(parallel_pair, CAPS, "sink", processors=shared, mode="tick").run()
        event = Executor(parallel_pair, CAPS, "sink", processors=shared, mode="event").run()
        assert tick.throughput == event.throughput
