"""Full timed state space exploration (Fig. 3 / Theorem 1 / Property 1)."""

import pytest

from repro.engine.executor import Executor
from repro.exceptions import EngineError
from repro.graph.builder import GraphBuilder


class TestFullStateSpace:
    def test_fig1_cycle_length_is_the_period(self, fig1):
        executor = Executor(fig1, {"alpha": 4, "beta": 2}, "c")
        states, cycle_start = executor.explore_full_state_space()
        # Property 1: exactly one cycle; its length is the period (7).
        assert len(states) - cycle_start == 7

    def test_states_are_unique_before_cycle(self, fig1):
        executor = Executor(fig1, {"alpha": 4, "beta": 2}, "c")
        states, _cycle_start = executor.explore_full_state_space()
        assert len(set(states)) == len(states)

    def test_deadlock_shows_as_self_loop(self, fig1):
        executor = Executor(fig1, {"alpha": 3, "beta": 2}, "c")
        states, cycle_start = executor.explore_full_state_space()
        # The cycle is a single idle state (Theorem 1's self-loop).
        assert len(states) - cycle_start == 1
        assert states[cycle_start].is_idle

    def test_token_counts_respect_capacities(self, fig1):
        caps = {"alpha": 4, "beta": 2}
        executor = Executor(fig1, caps, "c")
        states, _ = executor.explore_full_state_space()
        for state in states:
            alpha, beta = state.tokens
            assert 0 <= alpha <= 4
            assert 0 <= beta <= 2

    def test_max_states_guard(self, fig1):
        executor = Executor(fig1, {"alpha": 4, "beta": 2}, "c")
        with pytest.raises(EngineError, match="exceeds"):
            executor.explore_full_state_space(max_states=3)

    def test_mode_restored_after_exploration(self, fig1):
        executor = Executor(fig1, {"alpha": 4, "beta": 2}, "c", mode="event")
        executor.explore_full_state_space()
        assert executor.mode == "event"

    def test_max_throughput_distribution_has_period_four(self, fig1):
        states, cycle_start = Executor(
            fig1, {"alpha": 8, "beta": 4}, "c"
        ).explore_full_state_space()
        # At maximal throughput 1/4 the cycle spans 4 time steps.
        assert len(states) - cycle_start == 4

    def test_cycle_invariant_under_restart(self):
        graph = (
            GraphBuilder()
            .actors({"a": 2, "b": 3})
            .channel("a", "b")
            .channel("b", "a", initial_tokens=1)
            .build()
        )
        executor = Executor(graph, {"ch0": 2, "ch1": 2}, "b")
        first = executor.explore_full_state_space()
        second = executor.explore_full_state_space()
        assert first == second
