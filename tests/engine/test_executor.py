"""Unit tests for repro.engine.executor — the paper's core semantics."""

from fractions import Fraction

import pytest

from repro.engine.executor import Executor, execute
from repro.engine.state import SDFState
from repro.exceptions import CapacityError, EngineError, GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import SDFGraph
from tests.util import assert_valid_schedule

CAPS_4_2 = {"alpha": 4, "beta": 2}


class TestRunningExample:
    """The paper's Sec. 4-7 numbers for the Fig. 1 graph under (4, 2)."""

    def test_throughput_one_seventh(self, fig1):
        assert execute(fig1, CAPS_4_2, "c").throughput == Fraction(1, 7)

    def test_schedule_matches_table_1(self, fig1):
        result = execute(fig1, CAPS_4_2, "c", record_schedule=True)
        schedule = result.schedule
        assert schedule.start_times("a")[:6] == [0, 1, 4, 7, 8, 11]
        assert schedule.start_times("b")[:4] == [2, 5, 9, 12]
        assert schedule.start_times("c")[:2] == [7, 14]

    def test_schedule_is_semantically_valid(self, fig1):
        result = execute(fig1, CAPS_4_2, "c", record_schedule=True)
        assert_valid_schedule(fig1, result.schedule, CAPS_4_2)

    def test_first_firing_nine_instants_after_start(self, fig1):
        # Sec. 7: "... reached when c fires for the first time, which is
        # 9 time instances after the start".
        result = execute(fig1, CAPS_4_2, "c")
        assert result.first_firing_time == 9

    def test_periodic_phase_of_seven_steps(self, fig1):
        result = execute(fig1, CAPS_4_2, "c")
        assert result.cycle_duration == 7
        assert result.firings_in_cycle == 1
        assert result.cycle_states == 1

    def test_reduced_state_space_shape(self, fig1):
        # Fig. 4: one transient state (d=9) and the cycle state (d=7).
        result = execute(fig1, CAPS_4_2, "c")
        distances = [record.distance for record in result.reduced_states]
        assert distances == [9, 7, 7]
        assert result.states_stored == 2

    def test_period_property(self, fig1):
        assert execute(fig1, CAPS_4_2, "c").period == 7

    def test_early_states_match_section_6(self, fig1):
        # "After 1 time unit ... the state of the SDF graph is thus
        # equal to (1, 0, 0, 2, 0)."
        executor = Executor(fig1, CAPS_4_2, "c", mode="tick")
        states, _cycle_start = executor.explore_full_state_space()
        assert states[0] == SDFState((1, 0, 0), (0, 0))
        assert states[1] == SDFState((1, 0, 0), (2, 0))
        assert states[2] == SDFState((0, 2, 0), (4, 0))


class TestDeadlock:
    def test_alpha_below_bound_deadlocks(self, fig1):
        result = execute(fig1, {"alpha": 3, "beta": 2}, "c")
        assert result.deadlocked
        assert result.throughput == 0
        assert result.deadlock_time is not None
        assert result.first_firing_time is None

    def test_period_of_deadlocked_run_raises(self, fig1):
        from repro.exceptions import DeadlockError

        result = execute(fig1, {"alpha": 3, "beta": 2}, "c")
        with pytest.raises(DeadlockError):
            result.period

    def test_token_free_cycle_deadlocks_immediately(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b")
            .channel("b", "a")
            .build()
        )
        result = execute(graph, None, "b")
        assert result.deadlocked
        assert result.deadlock_time == 0

    def test_deadlock_reports_blocked_channels(self, fig1):
        result = execute(fig1, {"alpha": 3, "beta": 2}, "c", track_blocking=True)
        assert "alpha" in result.space_blocked
        assert result.space_deficits["alpha"] >= 1


class TestStarvation:
    def test_observed_actor_starves_while_rest_runs(self):
        # Component 1 runs forever; component 2 deadlocks (no tokens).
        graph = (
            GraphBuilder()
            .actors({"run1": 1, "run2": 1, "x": 1, "y": 1})
            .channel("run1", "run2", 1, 1)
            .channel("x", "y")
            .channel("y", "x")
            .build()
        )
        result = Executor(graph, {"ch0": 4}, "y", stall_threshold=5).run()
        assert result.throughput == 0
        assert result.deadlocked


class TestCapacities:
    def test_unknown_channel_rejected(self, fig1):
        with pytest.raises(CapacityError, match="unknown channel"):
            Executor(fig1, {"nope": 3})

    def test_negative_capacity_rejected(self, fig1):
        with pytest.raises(CapacityError, match="non-negative"):
            Executor(fig1, {"alpha": -1})

    def test_capacity_below_initial_tokens_rejected(self):
        graph = GraphBuilder().actors({"a": 1, "b": 1}).channel("a", "b", 1, 1, 5, name="c").build()
        with pytest.raises(CapacityError, match="below"):
            Executor(graph, {"c": 4})

    def test_partial_capacities_leave_rest_unbounded(self, fig1):
        # beta unbounded; alpha at its [GGD02] bound: b's serialisation
        # is the only limit -> 1/4.  (An unbounded channel *fed by a
        # faster producer* would grow forever — the state space is then
        # genuinely infinite, which is why the exploration always works
        # with finite capacities; see test_max_instants_guard.)
        result = execute(fig1, {"alpha": 12}, "c")
        assert result.throughput == Fraction(1, 4)

    def test_unbounded_source_channel_diverges_and_guard_fires(self, fig1):
        # alpha unbounded: a outruns b, tokens accumulate without bound
        # and no state ever recurs; the instant guard must catch it.
        with pytest.raises(EngineError, match="exceeded"):
            execute(fig1, {"beta": 2}, "c", max_instants=2000)

    def test_zero_capacity_deadlocks_producer(self, fig1):
        result = execute(fig1, {"alpha": 0, "beta": 2}, "c")
        assert result.deadlocked


class TestEngineGuards:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            Executor(SDFGraph("empty"))

    def test_unknown_observe_rejected(self, fig1):
        with pytest.raises(GraphError, match="unknown observed"):
            Executor(fig1, CAPS_4_2, "zz")

    def test_unknown_mode_rejected(self, fig1):
        with pytest.raises(EngineError, match="mode"):
            Executor(fig1, CAPS_4_2, "c", mode="warp")

    def test_max_instants_guard(self, fig1):
        with pytest.raises(EngineError, match="exceeded"):
            Executor(fig1, CAPS_4_2, "c", mode="tick", max_instants=3).run()

    def test_divergent_zero_time_cascade_detected(self):
        graph = GraphBuilder().actors({"src": 0, "snk": 1}).channel("src", "snk").build()
        with pytest.raises(EngineError, match="zero-execution-time"):
            execute(graph, None, "snk")


class TestZeroExecutionTimes:
    def test_zero_time_source_fills_channel_instantly(self):
        graph = GraphBuilder().actors({"src": 0, "snk": 2}).channel("src", "snk").build()
        result = execute(graph, {"ch0": 3}, "snk")
        # src fills the channel at t=0 and refills as snk consumes;
        # snk is the bottleneck: throughput 1/2.
        assert result.throughput == Fraction(1, 2)

    def test_zero_time_chain_within_one_instant(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "z1": 0, "z2": 0, "snk": 1})
            .chain("a", "z1", "z2", "snk")
            .build()
        )
        result = execute(graph, {"ch0": 1, "ch1": 1, "ch2": 1}, "snk", record_schedule=True)
        # The zero-time actors forward tokens within the instant, so the
        # chain runs at the source rate despite single-token channels.
        assert result.throughput == Fraction(1, 1)
        assert_valid_schedule(graph, result.schedule, {"ch0": 1, "ch1": 1, "ch2": 1})

    def test_all_zero_actors_with_bounded_channel(self):
        graph = (
            GraphBuilder()
            .actors({"a": 0, "b": 1})
            .channel("a", "b")
            .channel("b", "a", initial_tokens=1)
            .build()
        )
        result = execute(graph, {"ch0": 1, "ch1": 1}, "b")
        assert result.throughput == Fraction(1, 1)


class TestSelfLoops:
    def test_self_loop_requires_claim_space(self):
        # One token, rate-1 self-loop: capacity 1 cannot hold the claim.
        graph = GraphBuilder().actor("a", 1).self_loop("a", tokens=1, name="s").build()
        assert execute(graph, {"s": 1}, "a").deadlocked
        assert execute(graph, {"s": 2}, "a").throughput == 1

    def test_self_loop_serialises_at_token_rate(self):
        graph = GraphBuilder().actor("a", 3).self_loop("a", tokens=1, name="s").build()
        assert execute(graph, {"s": 2}, "a").throughput == Fraction(1, 3)
