"""Unit tests for repro.engine.statestore."""

from repro.engine.statestore import StateStore


class TestStateStore:
    def test_add_new_states(self):
        store = StateStore()
        assert store.add("s0") is None
        assert store.add("s1") is None
        assert len(store) == 2
        assert list(store) == ["s0", "s1"]

    def test_revisit_returns_first_index(self):
        store = StateStore()
        store.add("s0")
        store.add("s1")
        store.add("s2")
        assert store.add("s1") == 1
        # The store is unchanged by the failed insert.
        assert len(store) == 3

    def test_cycle_slice(self):
        store = StateStore()
        for state in ("t0", "t1", "c0", "c1"):
            store.add(state)
        index = store.add("c0")
        assert index == 2
        assert store.states_from(index) == ["c0", "c1"]

    def test_contains_and_indexing(self):
        store = StateStore()
        store.add(("a", 1))
        assert ("a", 1) in store
        assert ("b", 2) not in store
        assert store[0] == ("a", 1)
