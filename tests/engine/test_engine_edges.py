"""Edge cases both engines must classify identically.

Covers the hazards a calendar-based kernel could plausibly get wrong:
diverging zero-execution-time cascades (the ``_MAX_FIRINGS_PER_INSTANT``
guard), converging zero-duration cascades (multi-firing reduced states),
observed-actor starvation via ``stall_threshold``, and malformed
capacity vectors.
"""

import pytest

import repro.engine.executor as executor_module
from repro.engine.executor import Executor
from repro.engine.fastcore import FastKernel
from repro.exceptions import CapacityError, EngineError
from repro.graph.builder import GraphBuilder


def both_outcomes(graph, caps, observe, **options):
    """(reference, fast) pair of results-or-error-strings."""

    def outcome(run):
        try:
            return run()
        except (EngineError, CapacityError) as error:
            return f"{type(error).__name__}: {error}"

    reference = outcome(lambda: Executor(graph, caps, observe, **options).run())
    fast = outcome(lambda: FastKernel(graph, observe).run(caps, **options))
    return reference, fast


def test_diverging_zero_time_cascade_trips_guard_in_both(monkeypatch):
    """A zero-time source on an unbounded channel fires forever within
    t=0; both engines must raise the identical guard error."""
    monkeypatch.setattr(executor_module, "_MAX_FIRINGS_PER_INSTANT", 500)
    graph = GraphBuilder().actors({"a": 0, "b": 1}).channel("a", "b", 1, 1).build()
    reference, fast = both_outcomes(graph, None, "b")
    assert fast == reference
    assert "zero-execution-time cascade" in reference


def test_bounded_zero_time_cascade_converges_identically():
    """With a bounded output the same cascade stops when the channel
    fills; the engines must agree on the resulting steady state."""
    graph = GraphBuilder().actors({"a": 0, "b": 1}).channel("a", "b", 1, 1).build()
    reference, fast = both_outcomes(graph, {"ch0": 5}, "b")
    assert fast == reference
    assert not reference.deadlocked


def test_multi_firing_instants_of_observed_actor():
    """A zero-time observed actor completes several firings per instant;
    the reduced states record ``firings > 1`` and must match."""
    graph = GraphBuilder().actors({"a": 1, "b": 0}).channel("a", "b", 3, 1).build()
    reference, fast = both_outcomes(graph, {"ch0": 3}, "b")
    assert fast == reference
    assert any(state.firings == 3 for state in reference.reduced_states)


def test_observed_actor_starvation_detected_identically():
    """The observed actor fires once and then starves while an
    unrelated component keeps the clock advancing: only the
    ``stall_threshold`` full-state check can classify this, and both
    engines must agree (deadlocked, no deadlock time)."""
    graph = (
        GraphBuilder()
        .actors({"x": 1, "y": 1, "z": 1})
        .self_loop("x")
        .channel("y", "z", 1, 1, initial_tokens=1, name="c_yz")
        .channel("z", "y", 1, 2, initial_tokens=0, name="c_zy")
        .build(validate=False)
    )
    reference, fast = both_outcomes(
        graph, {"c_yz": 2, "c_zy": 2, "ch0": 2}, "z", stall_threshold=10
    )
    assert fast == reference
    assert reference.deadlocked
    assert reference.deadlock_time is None
    assert reference.throughput == 0


def test_true_deadlock_classified_identically():
    """An insufficient-token cycle deadlocks at a definite time."""
    graph = (
        GraphBuilder()
        .actors({"a": 2, "b": 3})
        .channel("a", "b", 1, 2, initial_tokens=1, name="fwd")
        .channel("b", "a", 1, 1, initial_tokens=1, name="back")
        .build(validate=False)
    )
    reference, fast = both_outcomes(graph, {"fwd": 2, "back": 2}, "b")
    assert fast == reference
    assert reference.deadlocked
    assert reference.deadlock_time is not None


@pytest.mark.parametrize(
    "caps, message",
    [
        ({"ch0": 1}, "below its 2 initial tokens"),
        ({"nope": 3}, "unknown channel"),
        ({"ch0": -1}, "non-negative int"),
        ({"ch0": True}, "non-negative int"),
    ],
)
def test_malformed_capacities_rejected_identically(caps, message):
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b", 1, 1, initial_tokens=2)
        .build()
    )
    reference, fast = both_outcomes(graph, caps, "b")
    assert fast == reference
    assert "CapacityError" in reference
    assert message in reference


def test_max_instants_guard_agrees(fig1):
    reference, fast = both_outcomes(fig1, {"alpha": 4, "beta": 2}, "c", max_instants=2)
    assert fast == reference
    assert "exceeded 2 time instants" in reference
