"""Unit tests for repro.engine.schedule."""

from repro.engine.schedule import FiringEvent, Schedule
from repro.graph.builder import GraphBuilder


def make_schedule():
    graph = GraphBuilder().actors({"a": 2, "b": 1}).channel("a", "b").build()
    schedule = Schedule(graph)
    schedule.record("a", 0, 2)
    schedule.record("b", 2, 3)
    schedule.record("a", 2, 4)
    return schedule


class TestSchedule:
    def test_events_in_order(self):
        schedule = make_schedule()
        assert [event.actor for event in schedule.events] == ["a", "b", "a"]

    def test_start_times_definition_3(self):
        schedule = make_schedule()
        assert schedule.start_times("a") == [0, 2]
        assert schedule.start_times("b") == [2]

    def test_num_firings_and_horizon(self):
        schedule = make_schedule()
        assert schedule.num_firings("a") == 2
        assert schedule.num_firings("b") == 1
        assert schedule.horizon == 4

    def test_activity(self):
        schedule = make_schedule()
        assert schedule.activity("a", 0) == "start"
        assert schedule.activity("a", 1) == "running"
        assert schedule.activity("a", 2) == "start"
        assert schedule.activity("b", 0) is None
        assert schedule.activity("b", 2) == "start"

    def test_concurrent_firings(self):
        schedule = make_schedule()
        active = {event.actor for event in schedule.concurrent_firings(2)}
        assert active == {"a", "b"}

    def test_zero_duration_firing(self):
        graph = GraphBuilder().actor("z", 0).build()
        schedule = Schedule(graph)
        schedule.record("z", 3, 3)
        assert schedule.activity("z", 3) == "start"
        assert schedule.concurrent_firings(3) == [FiringEvent("z", 3, 3)]
        assert schedule.events[0].duration == 0

    def test_len_and_repr(self):
        schedule = make_schedule()
        assert len(schedule) == 3
        assert "3 firings" in repr(schedule)
