#!/usr/bin/env python3
"""Buffer sizing under a multiprocessor mapping (extension X2).

The paper targets multi-processor systems-on-chip where each actor
runs on a processor without intra-actor concurrency.  This example
goes one step further and maps *several* actors onto each processor
(with deterministic fixed-priority arbitration), then shows how the
mapping changes throughput, latency, the periodic schedule and the
blocking analysis of the running example.

Run with:  python examples/multiprocessor_mapping.py
"""

from repro import Executor, explore_design_space
from repro.analysis.latency import iteration_latency
from repro.buffers.explain import explain_front, render_explanations
from repro.gallery import fig1_example
from repro.reporting import render_pattern, schedule_table, steady_state_pattern

CAPS = {"alpha": 8, "beta": 4}


def main() -> None:
    graph = fig1_example()
    print(graph.describe())
    print()

    mappings = {
        "one processor per actor": None,
        "a+b share a processor": {"a": "p0", "b": "p0", "c": "p1"},
        "everything on one processor": {"a": "p0", "b": "p0", "c": "p0"},
    }
    for label, processors in mappings.items():
        result = Executor(
            graph, CAPS, "c", processors=processors, record_schedule=True
        ).run()
        print(f"{label}: throughput of c = {result.throughput}")
    print()

    # Unconstrained: steady-state pattern and blocking analysis.
    pattern = steady_state_pattern(graph, CAPS, "c")
    print(render_pattern(pattern))
    print()

    report = iteration_latency(graph, CAPS, "a", "c")
    print(f"latency a -> c: initial {report.initial_latency},"
          f" per iteration {report.iteration_latency}")
    print()

    space = explore_design_space(graph, "c")
    print("why each Pareto point cannot shrink (blocking analysis):")
    print(render_explanations(explain_front(graph, space.front, "c")))
    print()

    shared = Executor(graph, CAPS, "c", processors=mappings["a+b share a processor"],
                      record_schedule=True).run()
    print("schedule with a and b sharing processor p0:")
    print(schedule_table(shared.schedule, 14))


if __name__ == "__main__":
    main()
