#!/usr/bin/env python3
"""The H.263 decoder and throughput quantisation (Sec. 11).

The H.263 decoder's design space contains a very large number of
Pareto points whose throughputs differ only marginally.  The paper
limits the points searched by quantising the throughput dimension,
which "drastically improves the execution time of the design-space
exploration".  This example reproduces the effect on a scaled decoder
model (pass a different block count to approach the full-rate 2376).

Run with:  python examples/h263_quantization.py [blocks]
"""

import sys
import time

from repro import explore_design_space
from repro.gallery import h263_decoder
from repro.reporting import ascii_pareto


def main() -> None:
    blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 33
    graph = h263_decoder(blocks=blocks)
    print(f"H.263 decoder with {blocks} macroblock tokens per frame")
    print(graph.describe())
    print()

    started = time.perf_counter()
    exact = explore_design_space(graph)
    exact_time = time.perf_counter() - started
    print(f"exact exploration: {len(exact.front)} Pareto points,"
          f" {exact.stats.evaluations} evaluations, {exact_time:.2f}s")

    quantum = exact.max_throughput / 8
    started = time.perf_counter()
    quantised = explore_design_space(graph, quantum=quantum)
    quantised_time = time.perf_counter() - started
    print(f"quantised exploration (quantum {quantum}):"
          f" {len(quantised.front)} Pareto points, {quantised_time:.2f}s")
    print()

    print(ascii_pareto(quantised.front, title="quantised H.263 Pareto space"))
    print("kept points (smallest distribution per throughput level):")
    for point in quantised.front:
        print(f"  {point}")


if __name__ == "__main__":
    main()
