#!/usr/bin/env python3
"""Buffer sizing for the CD-to-DAT sample-rate converter under
throughput constraints, compared against the baseline methods.

The scenario the paper's introduction motivates: a streaming kernel
with a hard throughput requirement must be mapped with as little
memory as possible.  The exact explorer answers "what is the minimal
total buffering for X% of the maximal rate", and the two baselines
show what pre-existing methods would allocate instead.

Run with:  python examples/samplerate_tradeoffs.py
"""

from fractions import Fraction

from repro import explore_design_space, minimal_distribution_for_throughput
from repro.baselines import greedy_minimize, minimal_deadlock_free_distribution
from repro.gallery import sample_rate_converter
from repro.reporting import ascii_pareto


def main() -> None:
    graph = sample_rate_converter()
    print(graph.describe())
    print()

    space = explore_design_space(graph)
    print(ascii_pareto(space.front, title="CD-to-DAT converter: storage vs throughput"))
    maximal = space.max_throughput
    print(f"maximal throughput of 'dat': {maximal}")
    print()

    print("exact minimal storage per constraint:")
    for percent in (50, 75, 90, 100):
        constraint = maximal * Fraction(percent, 100)
        point = minimal_distribution_for_throughput(graph, constraint)
        print(f"  >= {percent:3d}% of max ({constraint}): size {point.size}"
              f"  {point.distribution}")
    print()

    unconstrained, reached = minimal_deadlock_free_distribution(graph)
    print(f"baseline [GBS05] (no throughput constraint): size {unconstrained.size}"
          f" at throughput {reached} ({float(reached / maximal):.0%} of max)")

    greedy_dist, greedy_thr, evaluations = greedy_minimize(graph, maximal)
    exact_top = space.front.max_throughput_point
    print(f"baseline greedy shrink (target max): size {greedy_dist.size}"
          f" after {evaluations} evaluations"
          f" vs exact minimum {exact_top.size}")


if __name__ == "__main__":
    main()
