#!/usr/bin/env python3
"""Reproducing the paper's `buffy` tool chain (Sec. 10, Fig. 8).

buffy reads an SDF graph from XML and *generates a program* that
performs the design-space exploration for exactly that graph.  This
example round-trips the running example through the XML format,
generates both the runnable Python explorer and the Fig.-8-style C
source, executes the Python one, and checks it against the library
engine.

Run with:  python examples/codegen_buffy.py
"""

import tempfile
from pathlib import Path

from repro import Executor
from repro.codegen import generate_c, generate_python, load_generated
from repro.gallery import fig1_example
from repro.io import read_xml, write_xml


def main() -> None:
    # 1. Write the graph to the XML exchange format and read it back
    #    (buffy "takes an XML description of an SDF graph as input").
    graph = fig1_example()
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "example.xml"
        write_xml(graph, path)
        graph = read_xml(path)
        print(f"loaded {graph.name!r} from {path.name}:"
              f" {graph.num_actors} actors, {graph.num_channels} channels")
    print()

    # 2. Generate the specialised explorer (Python, runnable).
    source = generate_python(graph, observe="c")
    print(f"generated Python explorer: {len(source.splitlines())} lines")
    module = load_generated(source, "buffy_example")

    # 3. Run it and cross-check against the library engine.
    for alpha, beta in ((4, 2), (5, 2), (6, 2), (8, 2)):
        generated = module.exec_sdf_graph((alpha, beta))
        engine = Executor(graph, {"alpha": alpha, "beta": beta}, "c").run().throughput
        status = "ok" if generated == engine else "MISMATCH"
        print(f"  ({alpha}, {beta}): generated {generated} | engine {engine}  [{status}]")
        assert generated == engine
    print()

    print("Pareto points found by the generated explorer:")
    for size, throughput, capacities in module.explore():
        print(f"  size {size}: throughput {throughput} via {capacities}")
    print()

    # 4. Emit the Fig.-8-style C source as a textual artefact.
    c_source = generate_c(graph, observe="c")
    print("Fig.-8-style C source (first 20 lines):")
    for line in c_source.splitlines()[:20]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
