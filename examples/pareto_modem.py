#!/usr/bin/env python3
"""Charting the modem's Pareto space (Fig. 13 of the paper).

Explores the complete design space of the 16-actor modem graph with
all three strategies, compares their costs, and renders the Pareto
staircase.

Run with:  python examples/pareto_modem.py
"""

from repro import explore_design_space
from repro.gallery import modem
from repro.reporting import ascii_pareto, table2, table2_row


def main() -> None:
    graph = modem()
    print(graph.describe())
    print()

    results = {}
    for strategy in ("dependency", "divide", "exhaustive"):
        if strategy != "dependency" and graph.num_channels > 8:
            # The enumeration-based strategies are exponential in the
            # channel count; on 19 channels only the dependency-guided
            # strategy is practical (that is the ablation's point).
            continue
        results[strategy] = explore_design_space(graph, strategy=strategy)

    space = results["dependency"]
    print(ascii_pareto(space.front, title="Pareto space of the modem (Fig. 13)"))
    for point in space.front:
        print(f"  {point}")
    print()
    print(f"exploration cost: {space.stats.evaluations} throughput evaluations,"
          f" max {space.stats.max_states_stored} stored states,"
          f" {space.stats.wall_time_s:.2f}s")
    print()
    print("Table-2 style summary row:")
    print(table2([table2_row(graph, space.observe, space)]))


if __name__ == "__main__":
    main()
