#!/usr/bin/env python3
"""Buffer sizing for a cyclo-static downsampler (CSDF extension).

The paper's conclusions propose generalising the exact exploration to
richer dataflow models; this example runs the CSDF generalisation on a
small audio-style pipeline with a two-phase decimator whose second
phase produces nothing, and exports the resulting schedule as a VCD
waveform for inspection in GTKWave.

Run with:  python examples/csdf_downsampler.py
"""

from fractions import Fraction
from pathlib import Path
import tempfile

from repro.csdf import (
    CSDFExecutor,
    CSDFGraph,
    csdf_max_throughput,
    csdf_repetition_vector,
    explore_csdf_design_space,
)
from repro.io import schedule_to_vcd


def build_pipeline() -> CSDFGraph:
    """source -> biquad filter -> 2:1 decimator -> sink."""
    graph = CSDFGraph("decimator")
    graph.add_actor("src", (1,))
    graph.add_actor("biquad", (2,))
    # The decimator consumes one sample in each of its two phases but
    # emits only in the first; the second phase is cheaper.
    graph.add_actor("decim", (2, 1))
    graph.add_actor("snk", (1,))
    graph.add_channel("src", "biquad", (1,), (1,), name="raw")
    graph.add_channel("biquad", "decim", (1,), (1, 1), name="filtered")
    graph.add_channel("decim", "snk", (1, 0), (1,), name="decimated")
    return graph


def main() -> None:
    graph = build_pipeline()
    print(graph.describe())
    print(f"repetition vector (phase cycles): {csdf_repetition_vector(graph)}")
    print(f"maximal throughput of 'snk': {csdf_max_throughput(graph, 'snk')}")
    print()

    result = explore_csdf_design_space(graph, "snk")
    print(f"Pareto space ({result.evaluations} evaluations):")
    for point in result.front:
        print(f"  {point}")
    print()

    # Execute the cheapest maximal-throughput distribution and dump a
    # waveform trace of the schedule.
    top = result.front.max_throughput_point
    run = CSDFExecutor(graph, top.distribution, "snk", record_schedule=True).run()
    assert run.throughput == top.throughput
    vcd = schedule_to_vcd(run.schedule, until=24)
    out = Path(tempfile.gettempdir()) / "decimator.vcd"
    out.write_text(vcd)
    print(f"throughput {run.throughput} with {top.distribution}")
    print(f"VCD schedule trace written to {out} ({len(vcd.splitlines())} lines)")
    print()
    print("first trace lines:")
    for line in vcd.splitlines()[:12]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
