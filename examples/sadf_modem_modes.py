#!/usr/bin/env python3
"""Scenario-aware buffer sizing for the multi-mode modem (FSM-SADF).

The paper sizes buffers for one fixed behaviour; real receivers switch
between behaviours — the modem spends its start-up in an *acquisition*
mode with heavy equaliser adaptation and then drops into the cheaper
*tracking* mode, paying a retune delay on every switch.  The
:mod:`repro.sadf` subsystem models that as a scenario graph (one SDF
rate/time binding per mode over a shared skeleton, plus a scenario
FSM) and answers two questions exactly:

1. what is the **worst-case throughput** of a given buffer assignment
   over *every* mode sequence the FSM accepts, and
2. what is the Pareto front of buffer size against that all-scenario
   worst case?

Run with:  python examples/sadf_modem_modes.py
"""

from fractions import Fraction

from repro.gallery import h263_frames, modem_modes
from repro.sadf import (
    explore_design_space,
    minimal_sadf_distribution_for_throughput,
    worst_case_throughput,
)


def main() -> None:
    # 1. The scenario graph: two full SDF bindings over one skeleton.
    sadf = modem_modes()
    print(f"{sadf.name}: {len(sadf.actors)} actors, {len(sadf.channels)} channels,"
          f" scenarios {', '.join(sadf.scenario_names)}")
    print(sadf.effective_fsm().describe())
    print()

    # 2. Worst case of one concrete assignment (all capacities 16).
    capacities = {name: 16 for name in sadf.channel_names}
    report = worst_case_throughput(sadf, capacities, "out")
    print("uniform capacity 16:")
    print(report.summary())
    print()

    # 3. The all-scenario design space.  The H.263 frame-type graph is
    #    small enough to sweep in full here; the modem sweep is the
    #    same call (a second or two — try it).
    frames = h263_frames()
    result = explore_design_space(frames, "mc")
    print(f"{frames.name} all-scenario Pareto front"
          f" ({result.stats.evaluations} evaluations):")
    for point in result.front:
        print(f"  size={point.size:>3}  worst-case throughput={point.throughput}")
    print()

    # 4. The inverse query: cheapest distribution meeting a constraint.
    point = minimal_sadf_distribution_for_throughput(frames, Fraction(1, 13), "mc")
    assert point is not None
    print(f"minimal storage for worst case >= 1/13: size {point.size},"
          f" {dict(point.distribution)}")


if __name__ == "__main__":
    main()
