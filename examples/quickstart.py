#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the Fig. 1 graph, executes it under the storage distribution
(alpha, beta) -> (4, 2), prints the Table-1 schedule, and charts the
complete storage/throughput Pareto space (Fig. 5).

Run with:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import GraphBuilder, Executor, explore_design_space, repetition_vector
from repro.reporting import ascii_pareto, schedule_table


def main() -> None:
    # 1. Describe the SDF graph (Fig. 1 of the paper).
    graph = (
        GraphBuilder("example")
        .actor("a", execution_time=1)
        .actor("b", execution_time=2)
        .actor("c", execution_time=2)
        .channel("a", "b", production=2, consumption=3, name="alpha")
        .channel("b", "c", production=1, consumption=2, name="beta")
        .build()
    )
    print(graph.describe())
    print(f"repetition vector: {repetition_vector(graph)}")
    print()

    # 2. Execute it under a concrete storage distribution.
    result = Executor(graph, {"alpha": 4, "beta": 2}, "c", record_schedule=True).run()
    print(f"throughput of 'c' under (4, 2): {result.throughput}"
          f"  (one firing every {result.period} steps)")
    print()
    print("schedule (Table 1 of the paper):")
    print(schedule_table(result.schedule, 16))
    print()

    # 3. Chart the full buffer-size / throughput trade-off space.
    space = explore_design_space(graph, observe="c")
    print(space.summary())
    print()
    print(ascii_pareto(space.front, title="Pareto space (Fig. 5 of the paper)"))

    # 4. Answer the headline question: minimal memory for a constraint.
    from repro import minimal_distribution_for_throughput

    point = minimal_distribution_for_throughput(graph, Fraction(1, 6), "c")
    print(f"minimal storage for throughput >= 1/6: {point.distribution}"
          f" (total {point.size} tokens)")


if __name__ == "__main__":
    main()
