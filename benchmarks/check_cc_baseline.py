"""CI gate: the compiled ``cc`` backend must keep its speedup and exactness.

Re-runs the wave workloads of the target BML99 case studies (modem and
satellite receiver, as recorded in the committed ``BENCH_cc.json``)
through the ``reference`` and ``cc`` backends, asserting

* lane-for-lane identical ``EvalResult``s (exactness is the contract
  that makes the backend seam safe), and
* a cc speedup at or above the acceptance target recorded in the
  baseline (>= 20x) on *every* target graph — measured fresh, because
  wall-clock figures from another machine are not comparable, while
  the speedup *ratio* on the same machine is.

On a host without a working C compiler the gate skips (exit 0) with a
message — the availability contract is covered by the unit suite; the
perf contract only applies where the backend can run at all.

A workload-shape drift (lane count changed) fails loudly instead of
silently gating a different benchmark.

Usage::

    PYTHONPATH=src python benchmarks/check_cc_baseline.py \
        --baseline BENCH_cc.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from bench_batched_probe import GALLERY, thin, workload_wave
from repro.engine import ccore
from repro.engine.backends import backend_for


def check_graph(name: str, entry: dict, target: float, repeats: int) -> bool:
    graph = GALLERY[name]()
    wave = workload_wave(name)
    if len(wave) != entry["lanes"]:
        print(
            f"FAIL: {name} workload drifted — {len(wave)} lanes vs baseline"
            f" {entry['lanes']}; re-record the baseline",
            file=sys.stderr,
        )
        return False

    reference = backend_for("reference")
    compiled = backend_for("cc")
    compiled.evaluate_batch(graph, wave[:2], None)  # compile outside timing

    best_ref, best_cc = float("inf"), float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        ref_results = reference.evaluate_batch(graph, wave, None)
        best_ref = min(best_ref, time.perf_counter() - started)
        started = time.perf_counter()
        cc_results = compiled.evaluate_batch(graph, wave, None)
        best_cc = min(best_cc, time.perf_counter() - started)
        if thin(cc_results) != thin(ref_results):
            print(f"FAIL: {name}: cc results differ from reference", file=sys.stderr)
            return False

    speedup = best_ref / best_cc if best_cc else 0.0
    print(
        f"{name}: cc {speedup:.1f}x over reference ({len(wave)} lanes;"
        f" baseline recorded {entry['cc_speedup']:.1f}x, target {target:.0f}x)"
    )
    if speedup < target:
        print(
            f"FAIL: {name}: {speedup:.1f}x < target {target:.0f}x — the compiled"
            " kernel regressed (or this machine is pathologically noisy:"
            " re-run before digging)",
            file=sys.stderr,
        )
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="BENCH_cc.json", help="committed benchmark report"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of, damps CI noise)"
    )
    arguments = parser.parse_args(argv)

    reason = ccore.availability()
    if reason is not None:
        print(f"SKIP: cc backend unavailable — {reason}")
        return 0

    baseline = json.loads(Path(arguments.baseline).read_text(encoding="utf-8"))
    target = float(baseline["speedup_target"])
    ok = all(
        check_graph(name, baseline["graphs"][name], target, arguments.repeats)
        for name in baseline["target_graphs"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
