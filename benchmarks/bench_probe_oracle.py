"""Probe-avoidance engine: simulation-count benchmark (PR 5).

Measures how many throughput simulations the divide-and-conquer
exploration of each case study performs with the bounds oracle off
(the status-quo midpoint recursion) versus on (the ascending walk with
oracle cuts and promotion seeding), asserting the fronts — sizes,
throughputs AND witness tuples — bit-identical on every run.  The
acceptance target is >= 30% fewer simulations on each BML99 case study
(modem, sample-rate converter, satellite receiver); ``fig1`` rides
along as a tiny sanity workload with no target attached.

Run standalone to emit ``BENCH_probe_oracle.json``::

    PYTHONPATH=src python benchmarks/bench_probe_oracle.py --repeats 1

or through pytest for a one-repeat correctness smoke::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_probe_oracle.py

Simulation counts are deterministic (the serial scans are exact and
ordered), so ``--repeats`` only steadies the wall-clock medians; the
counts themselves are reproducible run to run, which is what the CI
baseline gate (``benchmarks/check_probe_baseline.py``) relies on.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.buffers.bounds import lower_bound_distribution
from repro.buffers.explorer import explore_design_space
from repro.gallery import (
    fig1_example,
    modem,
    sample_rate_converter,
    satellite_receiver,
)
from repro.runtime.config import ExplorationConfig

GALLERY = {
    "fig1": fig1_example,
    "modem": modem,
    "samplerate": sample_rate_converter,
    "satellite": satellite_receiver,
}

#: max_size slack above the lower-bound corner, per graph: the BML99
#: case studies reuse the bench_fastcore.py exploration bounds so the
#: two reports describe the same workloads; fig1 gets enough slack to
#: cover its whole Pareto range.
SLACKS = {"fig1": 6, "modem": 1, "samplerate": 3, "satellite": 1}

#: The graphs the >= 30% reduction target applies to.
BML99 = ("modem", "samplerate", "satellite")

_REDUCTION_TARGET = 0.30


def _explore(graph, max_size: int, bounds: bool):
    return explore_design_space(
        graph,
        strategy="divide",
        max_size=max_size,
        config=ExplorationConfig(bounds=bounds),
    )


def _front_fingerprint(result):
    return [
        (point.size, str(point.throughput), [dict(w) for w in point.witnesses])
        for point in result.front
    ]


def bench_graph(name: str, repeats: int) -> dict:
    graph = GALLERY[name]()
    max_size = lower_bound_distribution(graph).size + SLACKS[name]

    off_times, on_times = [], []
    entry: dict = {"strategy": "divide", "max_size": max_size}
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        off = _explore(graph, max_size, bounds=False)
        off_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        on = _explore(graph, max_size, bounds=True)
        on_times.append(time.perf_counter() - started)
        # correctness gate on every run, not just the first
        assert _front_fingerprint(on) == _front_fingerprint(off), name
        assert on.max_throughput == off.max_throughput, name
        entry["evaluations_off"] = off.stats.evaluations
        entry["evaluations_on"] = on.stats.evaluations
        entry["bounds_exact"] = on.stats.bounds_exact
        entry["bounds_cut"] = on.stats.bounds_cut
    saved = entry["evaluations_off"] - entry["evaluations_on"]
    entry["reduction"] = (
        saved / entry["evaluations_off"] if entry["evaluations_off"] else 0.0
    )
    entry["off_s"] = statistics.median(off_times)
    entry["on_s"] = statistics.median(on_times)
    return entry


def run_benchmark(repeats: int) -> dict:
    graphs = {name: bench_graph(name, repeats) for name in GALLERY}
    return {
        "repeats": repeats,
        "reduction_target": _REDUCTION_TARGET,
        "graphs": graphs,
        "bml99_min_reduction": min(graphs[name]["reduction"] for name in BML99),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=1, help="timing repeats (median)")
    parser.add_argument(
        "--output", default="BENCH_probe_oracle.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the >= 30% per-graph reduction gate (smoke runs)",
    )
    arguments = parser.parse_args(argv)

    report = run_benchmark(arguments.repeats)
    Path(arguments.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for name, entry in report["graphs"].items():
        print(
            f"{name:12s} off {entry['evaluations_off']:6d} sims {entry['off_s']:7.2f}s"
            f"  on {entry['evaluations_on']:6d} sims {entry['on_s']:7.2f}s"
            f"  reduction {100 * entry['reduction']:5.1f}%"
            f"  (exact {entry['bounds_exact']}, cut {entry['bounds_cut']})"
        )
    minimum = report["bml99_min_reduction"]
    print(
        f"BML99 minimum simulation reduction: {100 * minimum:.1f}%"
        f" (target {100 * _REDUCTION_TARGET:.0f}%)"
    )
    print(f"report written to {arguments.output}")
    if not arguments.no_check and minimum < _REDUCTION_TARGET:
        print("FAIL: reduction below target on a BML99 case study", file=sys.stderr)
        return 1
    return 0


# -- pytest smoke entry points (collected only when named explicitly) ----


def test_probe_reduction_smoke():
    # samplerate is the cheapest BML99 workload; the full sweep is
    # exercised by the standalone run.
    entry = bench_graph("samplerate", repeats=1)
    assert entry["reduction"] >= _REDUCTION_TARGET
    assert entry["evaluations_on"] < entry["evaluations_off"]


def test_fig1_parity_smoke():
    entry = bench_graph("fig1", repeats=1)
    # fig1 is too small to avoid probes on, but parity must hold.
    assert entry["evaluations_on"] <= entry["evaluations_off"]


if __name__ == "__main__":
    sys.exit(main())
