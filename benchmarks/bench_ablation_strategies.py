"""A-1 ablation: exploration strategy comparison.

The paper's Sec. 9 strategy (divide-and-conquer over sizes with a
throughput-dimension search) is compared against the plain exhaustive
sweep and the storage-dependency-guided strategy used by the SDF3
implementation.  All three return the same exact Pareto front; they
differ — enormously — in the number of throughput evaluations.
"""

import pytest

from repro.buffers.explorer import explore_design_space

STRATEGIES = ("dependency", "divide", "exhaustive")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_on_example(benchmark, fig1, strategy):
    result = benchmark(lambda: explore_design_space(fig1, "c", strategy=strategy))
    assert [(p.size, str(p.throughput)) for p in result.front] == [
        (6, "1/7"),
        (8, "1/6"),
        (9, "1/5"),
        (10, "1/4"),
    ]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_on_fig6(benchmark, fig6, strategy):
    result = benchmark(lambda: explore_design_space(fig6, "d", strategy=strategy))
    assert len(result.front) >= 2


def test_strategy_cost_comparison(benchmark, fig1, fig6):
    """Evaluation counts per strategy (the ablation's headline data)."""
    benchmark.pedantic(
        lambda: explore_design_space(fig1, "c", strategy="dependency"), rounds=1, iterations=1
    )
    print()
    print("evaluations per strategy (front identical in every cell):")
    header = f"  {'graph':10s}" + "".join(f"{s:>12s}" for s in STRATEGIES)
    print(header)
    for name, graph, observe in (("example", fig1, "c"), ("fig6", fig6, "d")):
        counts = []
        fronts = []
        for strategy in STRATEGIES:
            result = explore_design_space(graph, observe, strategy=strategy)
            counts.append(result.stats.evaluations)
            fronts.append(result.front)
        assert fronts[0] == fronts[1] == fronts[2]
        print(f"  {name:10s}" + "".join(f"{c:12d}" for c in counts))
        # The dependency strategy never needs more evaluations than the
        # exhaustive sweep.
        assert counts[0] <= counts[2]
