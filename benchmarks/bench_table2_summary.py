"""E-T2: regenerate Table 2 — the experiment summary over all graphs.

Paper rows: number of actors / channels, minimal positive throughput
and its distribution size, maximal throughput and its distribution
size, number of Pareto points, maximum stored states, execution time.

The example graph's column is exact; the BML99 graphs and the H.263
decoder are documented reconstructions / scaled variants (DESIGN.md),
so their columns reproduce the *structure* of the paper's table
(counts of the right order, the H.263 column dominating the Pareto
count and runtime) rather than identical numbers.
"""

import pytest

from repro.buffers.explorer import explore_design_space
from repro.reporting.tables import table2, table2_row


@pytest.fixture(scope="module")
def all_results(fig1, modem_graph, samplerate_graph, satellite_graph, h263_graph):
    graphs = {
        "example": (fig1, "c"),
        "modem": (modem_graph, None),
        "samplerate": (samplerate_graph, None),
        "satellite": (satellite_graph, None),
        "h263": (h263_graph, None),
    }
    return {
        name: (graph, explore_design_space(graph, observe))
        for name, (graph, observe) in graphs.items()
    }


def test_table2_summary(benchmark, all_results):
    def build_rows():
        return [
            table2_row(graph, result.observe, result)
            for graph, result in all_results.values()
        ]

    rows = benchmark(build_rows)

    by_name = {row["example"]: row for row in rows}
    assert by_name["example"]["actors"] == 3
    assert by_name["example"]["channels"] == 2
    assert by_name["example"]["min thr > 0"] == "1/7"
    assert by_name["example"]["max thr"] == "1/4"
    assert by_name["example"]["#pareto"] == 4
    assert by_name["modem"]["actors"] == 16
    assert by_name["modem"]["channels"] == 19
    assert by_name["samplerate"]["actors"] == 6
    assert by_name["satellite"]["actors"] == 22
    assert by_name["satellite"]["channels"] == 26
    assert by_name["h263decoder"]["actors"] == 4
    assert by_name["h263decoder"]["channels"] == 3
    # As in the paper, the H.263 design space dwarfs the others.
    pareto_counts = {name: row["#pareto"] for name, row in by_name.items()}
    assert pareto_counts["h263decoder"] == max(pareto_counts.values())

    print()
    print("Table 2 — experimental results (reconstructed workloads):")
    print(table2(rows))


def test_table2_exploration_cost(benchmark, all_results):
    """Benchmark the cheapest full exploration (the example graph) as
    the per-column cost probe of Table 2's 'Exec. time' row."""
    graph, result = all_results["example"]

    benchmark(lambda: explore_design_space(graph, result.observe))
    assert result.stats.evaluations >= 4
