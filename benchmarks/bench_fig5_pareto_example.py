"""E-F5: regenerate Fig. 5 — Pareto space of the running example.

Paper: (4,2) is the smallest distribution with positive throughput
(1/7); the maximal throughput 1/4 is reached at distribution size 10;
(4,2) and (6,2) are minimal storage distributions, (5,2) is not.
"""

from fractions import Fraction

from repro.buffers.explorer import explore_design_space
from repro.reporting.plots import ascii_pareto


def explore(fig1):
    return explore_design_space(fig1, "c")


def test_fig5_pareto_space(benchmark, fig1):
    result = benchmark(explore, fig1)

    front = result.front
    assert [(p.size, p.throughput) for p in front] == [
        (6, Fraction(1, 7)),
        (8, Fraction(1, 6)),
        (9, Fraction(1, 5)),
        (10, Fraction(1, 4)),
    ]
    assert {"alpha": 4, "beta": 2} in [dict(w) for w in front[0].witnesses]

    print()
    print(ascii_pareto(front, title="Fig. 5 — Pareto space of the example graph"))
