"""E-T1: regenerate Table 1 — the schedule of the running example.

Paper: Fig. 1 graph under storage distribution (alpha, beta) -> (4, 2);
actors a, a, b, b*, ... with c first firing in step 8 and a new
iteration every 7 steps.
"""

from fractions import Fraction

from repro.engine.executor import Executor
from repro.reporting.tables import schedule_table


def run_schedule(fig1):
    return Executor(fig1, {"alpha": 4, "beta": 2}, "c", record_schedule=True).run()


def test_table1_schedule(benchmark, fig1):
    result = benchmark(run_schedule, fig1)

    # Shape checks against the paper's Table 1.
    assert result.throughput == Fraction(1, 7)
    schedule = result.schedule
    assert schedule.start_times("a")[:2] == [0, 1]  # steps 1, 2
    assert schedule.start_times("b")[0] == 2  # step 3
    assert schedule.start_times("c")[0] == 7  # step 8
    gaps = [b - a for a, b in zip(schedule.start_times("c"), schedule.start_times("c")[1:])]
    assert set(gaps) == {7}  # a new iteration every 7 steps

    print()
    print("Table 1 — schedule for the running example, distribution (4, 2):")
    print(schedule_table(schedule, 16))
