"""Compiled C probe backend: probe-throughput benchmark (PR 7).

Feeds the ``reference``, ``batch-numpy`` and compiled ``cc`` backends
the same 128-lane waves of capacity vectors — the enumeration slices a
divide-and-conquer exploration of each case study actually scans — and
measures probe throughput, asserting all backends return bit-identical
``EvalResult``s lane for lane.  The acceptance target is a >= 20x
speedup of the ``cc`` backend over the instrumented ``reference``
executor on *both* heavyweight BML99 case studies (modem and satellite
receiver); ``fig1`` and ``samplerate`` ride along for context.

Compile time is kept out of the timed region on purpose (the wave is
warmed first): the content-addressed kernel cache means a graph is
compiled once per machine, ever, while probe waves recur thousands of
times per exploration.  The report still records the one-off compile
cost separately (``compile_seconds``) so the trade is visible.

Run standalone to emit ``BENCH_cc.json``::

    PYTHONPATH=src python benchmarks/bench_cc_probe.py --repeats 3

or through pytest for a one-repeat correctness smoke::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_cc_probe.py

The EvalResults are deterministic; only the wall-clock figures move
between runs, so the CI gate (``benchmarks/check_cc_baseline.py``)
re-measures the speedup ratio instead of comparing recorded times.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from bench_batched_probe import GALLERY, thin, workload_wave
from repro.engine import ccore
from repro.engine.backends import backend_for

#: Backends timed against each other (registration names).
BACKENDS = ("reference", "batch-numpy", "cc")

#: The graphs the >= 20x cc speedup target applies to (both must hit).
TARGET_GRAPHS = ("modem", "satellite")

_SPEEDUP_TARGET = 20.0


def bench_graph(name: str, repeats: int) -> dict:
    graph = GALLERY[name]()
    wave = workload_wave(name)
    entry: dict = {"lanes": len(wave), "backends": {}}

    # One-off kernel compile, measured separately so the timed region
    # below sees the steady state every real exploration runs in.
    started = time.perf_counter()
    ccore.kernel_for(graph, None)
    entry["compile_seconds"] = time.perf_counter() - started

    expected = None
    for backend_name in BACKENDS:
        backend = backend_for(backend_name)
        backend.evaluate_batch(graph, wave[:2], None)  # warm per-graph caches
        times = []
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            results = backend.evaluate_batch(graph, wave, None)
            times.append(time.perf_counter() - started)
            fingerprint = thin(results)
            if expected is None:
                expected = fingerprint
            # correctness gate on every run, not just the first
            assert fingerprint == expected, (name, backend_name)
        seconds = statistics.median(times)
        entry["backends"][backend_name] = {
            "seconds": seconds,
            "probes_per_second": len(wave) / seconds if seconds else 0.0,
        }

    reference = entry["backends"]["reference"]["seconds"]
    for stats in entry["backends"].values():
        stats["speedup_vs_reference"] = (
            reference / stats["seconds"] if stats["seconds"] else 0.0
        )
    entry["cc_speedup"] = entry["backends"]["cc"]["speedup_vs_reference"]
    return entry


def run_benchmark(repeats: int) -> dict:
    graphs = {name: bench_graph(name, repeats) for name in GALLERY}
    return {
        "repeats": repeats,
        "speedup_target": _SPEEDUP_TARGET,
        "target_graphs": list(TARGET_GRAPHS),
        "graphs": graphs,
        "cc_speedups": {name: graphs[name]["cc_speedup"] for name in TARGET_GRAPHS},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (median)")
    parser.add_argument(
        "--output", default="BENCH_cc.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the >= 20x speedup gate (smoke runs)",
    )
    arguments = parser.parse_args(argv)

    reason = ccore.availability()
    if reason is not None:
        print(f"SKIP: cc backend unavailable — {reason}", file=sys.stderr)
        return 0

    report = run_benchmark(arguments.repeats)
    Path(arguments.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for name, entry in report["graphs"].items():
        row = [f"{name:12s} {entry['lanes']:4d} lanes"]
        for backend_name, stats in entry["backends"].items():
            row.append(
                f"{backend_name} {stats['probes_per_second']:10.1f}/s"
                f" ({stats['speedup_vs_reference']:6.1f}x)"
            )
        row.append(f"compile {entry['compile_seconds']:.2f}s")
        print("  ".join(row))
    failed = [
        name
        for name, speedup in report["cc_speedups"].items()
        if speedup < _SPEEDUP_TARGET
    ]
    for name, speedup in report["cc_speedups"].items():
        print(f"cc speedup on {name}: {speedup:.1f}x (target {_SPEEDUP_TARGET:.0f}x)")
    print(f"report written to {arguments.output}")
    if not arguments.no_check and failed:
        print(
            f"FAIL: cc speedup below target on {', '.join(failed)}", file=sys.stderr
        )
        return 1
    return 0


# -- pytest smoke entry points (collected only when named explicitly) ----

import pytest

pytestmark = pytest.mark.bench

_no_cc = ccore.availability()


@pytest.mark.skipif(_no_cc is not None, reason=f"cc unavailable: {_no_cc}")
def test_cc_agrees_on_modem_wave():
    entry = bench_graph("modem", repeats=1)
    # bench_graph asserts lane-for-lane agreement internally; the smoke
    # additionally checks every timed backend actually ran the wave.
    assert set(entry["backends"]) == set(BACKENDS)
    assert entry["lanes"] > 0


@pytest.mark.skipif(_no_cc is not None, reason=f"cc unavailable: {_no_cc}")
def test_cc_beats_reference_smoke():
    entry = bench_graph("modem", repeats=1)
    # The full 20x gate runs standalone / in CI where timing is stable;
    # the smoke only requires a decisive win so it stays noise-proof.
    assert entry["cc_speedup"] > 5.0


if __name__ == "__main__":
    sys.exit(main())
