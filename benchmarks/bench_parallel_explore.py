"""Parallel/cached exploration speedup on the BML99 graphs.

The evaluation service fans the independent throughput probes of one
exploration out to a process pool.  This benchmark reports wall-clock
speedup of ``workers=4`` over the serial baseline on the BML99 graphs
(the paper's Sec. 10 experiment set) and asserts the exactness
contract along the way: identical fronts, and evaluation counts that
never exceed the serial baseline (the dependency strategy's
batch-by-size fan-out is speculation-free).

Speedup assertions only run when the machine actually has multiple
cores available — on a single-CPU box the pool serialises and only the
exactness half of the contract is checkable.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.buffers.explorer import explore_design_space
from repro.runtime.config import ExplorationConfig

WORKERS = 4

#: Wall-clock assertions need real parallel hardware.
MULTI_CORE = len(os.sched_getaffinity(0)) >= 2


def _fingerprint(front):
    return [(p.size, p.throughput, p.witnesses) for p in front]


def _timed(graph, observe, **kwargs):
    started = time.perf_counter()
    result = explore_design_space(graph, observe, strategy="dependency", **kwargs)
    return result, time.perf_counter() - started


@pytest.mark.parametrize("graph_fixture", ["samplerate_graph", "modem_graph"])
def test_parallel_explore_matches_serial(benchmark, graph_fixture, request):
    graph = request.getfixturevalue(graph_fixture)
    serial, serial_seconds = _timed(graph, None, workers=1, cache=False)
    parallel = benchmark(
        lambda: explore_design_space(
            graph, strategy="dependency", config=ExplorationConfig(workers=WORKERS)
        )
    )
    assert _fingerprint(parallel.front) == _fingerprint(serial.front)
    assert parallel.stats.evaluations <= serial.stats.evaluations
    del serial_seconds  # headline timing printed by test_parallel_speedup_report


def test_parallel_speedup_report(benchmark, samplerate_graph, modem_graph, satellite_graph):
    """The headline numbers: serial vs. workers=4 on each BML99 graph."""
    benchmark.pedantic(
        lambda: explore_design_space(samplerate_graph), rounds=1, iterations=1
    )
    print()
    print(f"dependency-strategy exploration, workers={WORKERS}"
          f" ({len(os.sched_getaffinity(0))} CPU(s) available):")
    print(f"  {'graph':12s} {'serial':>9s} {'parallel':>9s} {'speedup':>8s} {'evals':>6s}")
    speedups = []
    for graph in (samplerate_graph, modem_graph, satellite_graph):
        serial, serial_seconds = _timed(graph, None, workers=1, cache=False)
        parallel, parallel_seconds = _timed(graph, None, workers=WORKERS)
        assert _fingerprint(parallel.front) == _fingerprint(serial.front)
        assert parallel.stats.evaluations <= serial.stats.evaluations
        speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
        speedups.append(speedup)
        print(
            f"  {graph.name:12s} {serial_seconds:8.3f}s {parallel_seconds:8.3f}s"
            f" {speedup:7.2f}x {parallel.stats.evaluations:6d}"
        )
    if MULTI_CORE:
        assert max(speedups) >= 1.5, (
            f"expected >=1.5x speedup with {WORKERS} workers on at least one"
            f" BML99 graph, got {max(speedups):.2f}x"
        )
