"""CI gate: the probe-avoidance engine must not regress.

Re-runs the bounds-on divide exploration of one case study (modem by
default — the workload the PR 5 acceptance criterion is phrased
against) and compares its simulation count with the committed
``BENCH_probe_oracle.json`` baseline.  The serial bounds-on scan is
deterministic, so the comparison is exact: a single extra simulation
fails the gate, pointing at an oracle cut or walk-order regression
long before wall-clock noise would.

Usage::

    PYTHONPATH=src python benchmarks/check_probe_baseline.py \
        --baseline BENCH_probe_oracle.json --graph modem
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from bench_probe_oracle import GALLERY, SLACKS, _explore, _front_fingerprint
from repro.buffers.bounds import lower_bound_distribution


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="BENCH_probe_oracle.json", help="committed benchmark report"
    )
    parser.add_argument(
        "--graph", default="modem", choices=sorted(GALLERY), help="case study to re-run"
    )
    arguments = parser.parse_args(argv)

    baseline = json.loads(Path(arguments.baseline).read_text(encoding="utf-8"))
    entry = baseline["graphs"][arguments.graph]
    graph = GALLERY[arguments.graph]()
    max_size = lower_bound_distribution(graph).size + SLACKS[arguments.graph]
    if max_size != entry["max_size"]:
        print(
            f"FAIL: workload drifted — max_size {max_size} vs baseline"
            f" {entry['max_size']}; re-record the baseline",
            file=sys.stderr,
        )
        return 1

    on = _explore(graph, max_size, bounds=True)
    off_front = _front_fingerprint(_explore(graph, max_size, bounds=False))
    if _front_fingerprint(on) != off_front:
        print("FAIL: bounds-on front differs from bounds-off front", file=sys.stderr)
        return 1

    recorded = entry["evaluations_on"]
    fresh = on.stats.evaluations
    print(
        f"{arguments.graph}: {fresh} simulations with the oracle on"
        f" (baseline {recorded}, oracle off {entry['evaluations_off']})"
    )
    if fresh > recorded:
        print(
            f"FAIL: {fresh} > baseline {recorded} — the probe-avoidance"
            " engine regressed (or the workload changed: re-record the"
            " baseline deliberately)",
            file=sys.stderr,
        )
        return 1
    if fresh < recorded:
        print(
            f"note: improved to {fresh} < baseline {recorded}; consider"
            " re-recording the baseline to lock in the gain"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
