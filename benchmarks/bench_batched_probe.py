"""Batched probe plane: probe-throughput benchmark (PR 6).

Feeds every registered probe backend the same waves of capacity
vectors — the enumeration slices a divide-and-conquer exploration of
each case study actually scans — and measures probe throughput
(evaluations per second of wall time), asserting all backends return
bit-identical ``EvalResult``s lane for lane.  The acceptance target is
a >= 5x speedup of the lock-step ``batch-numpy`` backend over the
instrumented ``reference`` executor on at least one BML99 case study
(modem, sample-rate converter, satellite receiver); ``fig1`` rides
along as a tiny sanity workload with no target attached.

Run standalone to emit ``BENCH_batched.json``::

    PYTHONPATH=src python benchmarks/bench_batched_probe.py --repeats 3

or through pytest for a one-repeat correctness smoke::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_batched_probe.py

The EvalResults are deterministic; only the wall-clock figures move
between runs, so the CI gate (``benchmarks/check_batched_baseline.py``)
re-measures the speedup instead of comparing against recorded times.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from itertools import islice
from pathlib import Path

from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution
from repro.buffers.search import distributions_of_size
from repro.engine.backends import backend_for, backend_names
from repro.gallery import (
    fig1_example,
    modem,
    sample_rate_converter,
    satellite_receiver,
)

GALLERY = {
    "fig1": fig1_example,
    "modem": modem,
    "samplerate": sample_rate_converter,
    "satellite": satellite_receiver,
}

#: max_size slack above the lower-bound corner, matching the
#: bench_probe_oracle.py exploration workloads so the two reports
#: describe the same design-space slices.
SLACKS = {"fig1": 6, "modem": 1, "samplerate": 3, "satellite": 1}

#: The graphs the >= 5x speedup target applies to (at least one must hit).
BML99 = ("modem", "samplerate", "satellite")

_SPEEDUP_TARGET = 5.0

#: Lanes per workload: wide enough to amortise the lock-step kernel's
#: per-wave setup, small enough to keep the reference loop tolerable.
_WAVE_LANES = 128


def workload_wave(name: str, lanes: int = _WAVE_LANES) -> list[dict]:
    """The capacity vectors an exploration of *name* scans.

    Walks the enumeration slices from the lower-bound corner upward —
    exactly the candidates ``divide_and_conquer`` feeds the service —
    until *lanes* vectors are collected.
    """
    graph = GALLERY[name]()
    lower = lower_bound_distribution(graph)
    upper = upper_bound_distribution(graph)
    vectors: list[dict] = []
    size = lower.size
    while len(vectors) < lanes and size <= upper.size:
        slice_ = distributions_of_size(graph.channel_names, size, lower, upper)
        vectors.extend(dict(d) for d in islice(slice_, lanes - len(vectors)))
        size += 1
    return vectors


def thin(results):
    return [(str(r.throughput), r.states_stored, r.deadlocked) for r in results]


def bench_graph(name: str, repeats: int) -> dict:
    graph = GALLERY[name]()
    wave = workload_wave(name)
    entry: dict = {"lanes": len(wave), "backends": {}}

    expected = None
    for backend_name in backend_names():
        backend = backend_for(backend_name)
        backend.evaluate_batch(graph, wave[:2], None)  # warm per-graph caches
        times = []
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            results = backend.evaluate_batch(graph, wave, None)
            times.append(time.perf_counter() - started)
            fingerprint = thin(results)
            if expected is None:
                expected = fingerprint
            # correctness gate on every run, not just the first
            assert fingerprint == expected, (name, backend_name)
        seconds = statistics.median(times)
        entry["backends"][backend_name] = {
            "seconds": seconds,
            "probes_per_second": len(wave) / seconds if seconds else 0.0,
        }

    reference = entry["backends"]["reference"]["seconds"]
    for backend_name, stats in entry["backends"].items():
        stats["speedup_vs_reference"] = (
            reference / stats["seconds"] if stats["seconds"] else 0.0
        )
    entry["batch_numpy_speedup"] = entry["backends"]["batch-numpy"][
        "speedup_vs_reference"
    ]
    return entry


def run_benchmark(repeats: int) -> dict:
    graphs = {name: bench_graph(name, repeats) for name in GALLERY}
    best = max(BML99, key=lambda name: graphs[name]["batch_numpy_speedup"])
    return {
        "repeats": repeats,
        "speedup_target": _SPEEDUP_TARGET,
        "wave_lanes": _WAVE_LANES,
        "graphs": graphs,
        "bml99_best_workload": best,
        "bml99_best_speedup": graphs[best]["batch_numpy_speedup"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (median)")
    parser.add_argument(
        "--output", default="BENCH_batched.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the >= 5x BML99 speedup gate (smoke runs)",
    )
    arguments = parser.parse_args(argv)

    report = run_benchmark(arguments.repeats)
    Path(arguments.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for name, entry in report["graphs"].items():
        row = [f"{name:12s} {entry['lanes']:4d} lanes"]
        for backend_name, stats in entry["backends"].items():
            row.append(
                f"{backend_name} {stats['probes_per_second']:8.1f}/s"
                f" ({stats['speedup_vs_reference']:4.1f}x)"
            )
        print("  ".join(row))
    best = report["bml99_best_workload"]
    speedup = report["bml99_best_speedup"]
    print(
        f"best BML99 batch-numpy speedup: {speedup:.1f}x on {best}"
        f" (target {_SPEEDUP_TARGET:.0f}x)"
    )
    print(f"report written to {arguments.output}")
    if not arguments.no_check and speedup < _SPEEDUP_TARGET:
        print("FAIL: batch-numpy speedup below target on every BML99 case", file=sys.stderr)
        return 1
    return 0


# -- pytest smoke entry points (collected only when named explicitly) ----

import pytest

pytestmark = pytest.mark.bench


def test_backends_agree_on_modem_wave():
    entry = bench_graph("modem", repeats=1)
    # bench_graph asserts lane-for-lane agreement internally; the smoke
    # additionally checks every backend actually ran the full wave.
    assert set(entry["backends"]) == set(backend_names())
    assert entry["lanes"] > 0


def test_batch_numpy_beats_reference_smoke():
    entry = bench_graph("modem", repeats=1)
    # The full 5x gate runs standalone / in CI where timing is stable;
    # the smoke only requires a real win so it stays noise-proof.
    assert entry["batch_numpy_speedup"] > 1.5


if __name__ == "__main__":
    sys.exit(main())
