"""A-4 ablation: reduced vs full state space (the Sec. 7 claim).

"It is much more efficient in terms of memory and execution time to
construct the reduced state space than it is to explicitly construct
and store the entire timed state space."  Measured directly: the
number of stored states and the wall time of both constructions on
the experiment graphs.
"""

import pytest

from repro.engine.executor import Executor

CASES = {
    "example": ("fig1", {"alpha": 4, "beta": 2}, "c"),
    "example-max": ("fig1", {"alpha": 8, "beta": 4}, "c"),
}


@pytest.mark.parametrize("case", list(CASES))
def test_reduced_space_construction(benchmark, request, case):
    fixture, caps, observe = CASES[case]
    graph = request.getfixturevalue(fixture)
    result = benchmark(lambda: Executor(graph, caps, observe).run())
    assert result.states_stored >= 1


@pytest.mark.parametrize("case", list(CASES))
def test_full_space_construction(benchmark, request, case):
    fixture, caps, observe = CASES[case]
    graph = request.getfixturevalue(fixture)
    states, _ = benchmark(
        lambda: Executor(graph, caps, observe).explore_full_state_space()
    )
    assert len(states) >= 1


def test_reduced_space_is_smaller(benchmark, fig1, samplerate_graph):
    from repro.gallery import h263_decoder

    h263 = h263_decoder(blocks=9)

    def compare():
        rows = []
        for name, graph, caps, observe in (
            ("example", fig1, {"alpha": 4, "beta": 2}, "c"),
            (
                "samplerate",
                samplerate_graph,
                {"c1": 1, "c2": 4, "c3": 8, "c4": 14, "c5": 5},
                "dat",
            ),
            # Large execution times: the tick-level full space explodes
            # while the reduced space stays tiny — the Sec. 7 claim.
            ("h263(9)", h263, {"h1": 9, "h2": 1, "h3": 9}, "mc"),
        ):
            reduced = Executor(graph, caps, observe).run().states_stored
            full = len(Executor(graph, caps, observe).explore_full_state_space()[0])
            rows.append((name, reduced, full))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print("stored states: reduced vs full (Sec. 7's memory claim):")
    for name, reduced, full in rows:
        assert reduced <= full
        print(f"  {name:12s} reduced {reduced:6d}   full {full:6d}   ({full / reduced:.0f}x)")
