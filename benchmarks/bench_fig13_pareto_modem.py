"""E-F13: regenerate Fig. 13 — the Pareto space of the modem.

Paper: the modem's complete design space is explored; the published
figure shows a small staircase of trade-off points.  The modem here is
a documented reconstruction (DESIGN.md), so the absolute coordinates
differ while the staircase shape and scale are reproduced.
"""

from repro.buffers.explorer import explore_design_space
from repro.reporting.plots import ascii_pareto


def explore(graph):
    return explore_design_space(graph)


def test_fig13_pareto_modem(benchmark, modem_graph):
    result = benchmark.pedantic(explore, args=(modem_graph,), rounds=1, iterations=1)

    front = result.front
    assert 2 <= len(front) <= 20  # a small staircase, as in the figure
    sizes = front.sizes()
    assert sizes == sorted(set(sizes))
    assert front.max_throughput_point.throughput == result.max_throughput
    # All points lie within the meaningful size interval.
    assert front.min_positive.size >= result.lower_bounds.size
    assert front[-1].size <= result.upper_bounds.size

    print()
    print(ascii_pareto(front, title="Fig. 13 — Pareto space of the modem (reconstruction)"))
    print(f"explored with {result.stats.evaluations} evaluations,"
          f" max {result.stats.max_states_stored} stored states,"
          f" {result.stats.wall_time_s:.2f}s")
