"""E-F7: regenerate Fig. 7 — the bounds delimiting the design space.

Paper: per-channel lower bounds [ALP97/Mur96], a combined lower bound
[GBS05] and a combined upper bound [GGD02] box in every minimal
storage distribution; for the example graph lb = (4, 2).
"""

from repro.buffers.bounds import (
    lower_bound_distribution,
    size_bounds,
    upper_bound_distribution,
)


def compute_bounds(graph):
    return (
        lower_bound_distribution(graph),
        upper_bound_distribution(graph),
        size_bounds(graph),
    )


def test_fig7_bounds_example(benchmark, fig1):
    lower, upper, (low_size, high_size) = benchmark(compute_bounds, fig1)

    assert dict(lower) == {"alpha": 4, "beta": 2}
    assert dict(upper) == {"alpha": 12, "beta": 4}
    assert (low_size, high_size) == (6, 16)

    print()
    print("Fig. 7 — storage bound box of the example graph:")
    print(f"  per-channel lb: {lower}   combined lb = {low_size}")
    print(f"  per-channel ub: {upper}   combined ub = {high_size}")


def test_fig7_bounds_contain_front(fig6, benchmark):
    """Every Pareto point of the Fig. 6 graph lies inside [lb, ub]."""
    from repro.buffers.explorer import explore_design_space

    result = benchmark.pedantic(
        lambda: explore_design_space(fig6, "d"), rounds=1, iterations=1
    )
    low_size, high_size = size_bounds(fig6)
    for point in result.front:
        assert low_size <= point.size <= high_size

    print()
    print(f"Fig. 7 — Fig. 6 graph: front sizes {result.front.sizes()} within"
          f" [{low_size}, {high_size}]")
