"""Fast kernel vs reference executor: gallery speedup benchmark.

Two workload families are measured, with the two engines asserted
equivalent on every run:

* **raw** — repeated executions over a capacity sweep per gallery
  graph: ``FastKernel.run`` vs the plain reference ``Executor``;
* **exploration** — full design-space explorations of the BML99 case
  studies (modem, sample-rate converter, satellite receiver) through
  ``explore_design_space`` with ``engine="auto"`` vs
  ``engine="reference"`` — i.e. the fast kernel as picked automatically
  against the status-quo instrumented path.

Run standalone to emit ``BENCH_fastcore.json`` (median speedup per
graph plus the aggregate BML99 exploration median, which the full run
checks against the >= 2x target)::

    PYTHONPATH=src python benchmarks/bench_fastcore.py --repeats 5

or through pytest for a one-repeat correctness smoke::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_fastcore.py
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.buffers.bounds import lower_bound_distribution
from repro.buffers.explorer import explore_design_space
from repro.runtime.config import ExplorationConfig
from repro.engine.executor import Executor
from repro.engine.fastcore import FastKernel
from repro.gallery import (
    fig1_example,
    fig6_example,
    h263_decoder,
    modem,
    sample_rate_converter,
    satellite_receiver,
)

GALLERY = {
    "example": fig1_example,
    "fig6": fig6_example,
    "modem": modem,
    "samplerate": sample_rate_converter,
    "satellite": satellite_receiver,
    "h263-small": lambda: h263_decoder(blocks=33),
}

#: The paper's BML99 case studies — the exploration workloads the
#: >= 2x acceptance target is measured on.  Each exploration is bounded
#: to a partial Pareto space (``max_size`` slack above the lower-bound
#: corner) so a single run stays benchmark-sized; the slack is chosen
#: per graph to keep runs in the 1-30 s range while still evaluating
#: thousands of distributions.
BML99 = {"modem": 1, "samplerate": 3, "satellite": 1}

_SPEEDUP_TARGET = 2.0


def _median_time(run, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def bench_raw(name: str, repeats: int) -> dict:
    graph = GALLERY[name]()
    lower = lower_bound_distribution(graph)
    capsets = [
        {channel: lower[channel] + slack for channel in graph.channel_names}
        for slack in (0, 1, 2, 3)
    ]
    kernel = FastKernel(graph)
    for caps in capsets:  # correctness gate before timing
        assert kernel.run(caps) == Executor(graph, caps).run(), (name, caps)
    fast = _median_time(lambda: [kernel.run(caps) for caps in capsets], repeats)
    reference = _median_time(
        lambda: [Executor(graph, caps).run() for caps in capsets], repeats
    )
    return {
        "reference_s": reference,
        "fast_s": fast,
        "median_speedup": reference / fast if fast else float("inf"),
    }


def bench_exploration(name: str, repeats: int, strategy: str = "divide") -> dict:
    graph = GALLERY[name]()
    max_size = lower_bound_distribution(graph).size + BML99[name]

    def front(engine):
        result = explore_design_space(
            graph,
            strategy=strategy,
            max_size=max_size,
            config=ExplorationConfig(engine=engine),
        )
        return [(point.size, point.throughput, point.distribution) for point in result.front]

    assert front("auto") == front("reference"), name  # correctness gate
    fast = _median_time(lambda: front("auto"), repeats)
    reference = _median_time(lambda: front("reference"), repeats)
    return {
        "strategy": strategy,
        "max_size": max_size,
        "reference_s": reference,
        "fast_s": fast,
        "median_speedup": reference / fast if fast else float("inf"),
    }


def run_benchmark(repeats: int) -> dict:
    raw = {name: bench_raw(name, repeats) for name in GALLERY}
    exploration = {name: bench_exploration(name, repeats) for name in BML99}
    bml99_median = statistics.median(
        exploration[name]["median_speedup"] for name in BML99
    )
    return {
        "repeats": repeats,
        "speedup_target": _SPEEDUP_TARGET,
        "raw": raw,
        "exploration": exploration,
        "bml99_exploration_median_speedup": bml99_median,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (median)")
    parser.add_argument(
        "--output", default="BENCH_fastcore.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the >= 2x BML99 exploration speedup gate (smoke runs)",
    )
    arguments = parser.parse_args(argv)

    report = run_benchmark(arguments.repeats)
    Path(arguments.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for family in ("raw", "exploration"):
        for name, entry in report[family].items():
            print(
                f"{family:12s} {name:12s} reference {entry['reference_s']:8.4f}s"
                f"  fast {entry['fast_s']:8.4f}s  speedup {entry['median_speedup']:5.2f}x"
            )
    median = report["bml99_exploration_median_speedup"]
    print(f"BML99 exploration median speedup: {median:.2f}x (target {_SPEEDUP_TARGET}x)")
    print(f"report written to {arguments.output}")
    if not arguments.no_check and median < _SPEEDUP_TARGET:
        print("FAIL: median speedup below target", file=sys.stderr)
        return 1
    return 0


# -- pytest smoke entry points (collected only when named explicitly) ----


def test_raw_speedup_smoke():
    entry = bench_raw("modem", repeats=1)
    assert entry["median_speedup"] > 0


def test_exploration_equivalence_smoke():
    # samplerate is the cheapest BML99 exploration workload; the full
    # sweep is exercised by the standalone run.
    entry = bench_exploration("samplerate", repeats=1)
    assert entry["median_speedup"] > 0


if __name__ == "__main__":
    sys.exit(main())
