"""Baseline comparison: exact exploration vs the related work's methods.

Sec. 1 of the paper argues that (a) deadlock-free minimisation without
a throughput constraint can yield implementations that miss their
timing constraints, and (b) the existing throughput-aware heuristics
produce buffer sizes "as close as possible to the minimal size; none
of the techniques is exact".  This benchmark quantifies both gaps on
the running example and the sample-rate converter.
"""

from fractions import Fraction

from repro.baselines.deadlockfree import minimal_deadlock_free_distribution
from repro.baselines.greedy import greedy_minimize
from repro.buffers.explorer import explore_design_space, minimal_distribution_for_throughput


def test_deadlock_free_minimum_misses_throughput(benchmark, fig1):
    """[GBS05]-style sizing meets deadlock-freedom but not the paper's
    example constraint of maximal throughput."""
    distribution, throughput = benchmark(
        lambda: minimal_deadlock_free_distribution(fig1, "c")
    )
    assert distribution.size == 6
    assert throughput == Fraction(1, 7)  # well below the max of 1/4

    exact = minimal_distribution_for_throughput(fig1, Fraction(1, 4), "c")
    print()
    print(f"deadlock-free minimum: size 6 at throughput 1/7;"
          f" meeting 1/4 needs size {exact.size}")


def test_greedy_heuristic_versus_exact(benchmark, samplerate_graph):
    """The greedy shrink ([HLH91]/[GGD02] spirit) upper-bounds the
    exact minimum for the maximal throughput."""
    space = explore_design_space(samplerate_graph)
    target = space.max_throughput

    greedy_dist, greedy_thr, evaluations = benchmark.pedantic(
        lambda: greedy_minimize(samplerate_graph, target), rounds=1, iterations=1
    )
    exact = space.front.max_throughput_point

    assert greedy_thr >= target
    assert greedy_dist.size >= exact.size

    print()
    print(f"target throughput {target}: greedy size {greedy_dist.size}"
          f" ({evaluations} evaluations) vs exact minimum {exact.size}")


def test_exact_explorer_is_the_reference(benchmark, fig1):
    result = benchmark(lambda: explore_design_space(fig1, "c"))
    assert len(result.front) == 4
