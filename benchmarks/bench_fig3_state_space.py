"""E-F3: regenerate Fig. 3 — the full timed state space of the example.

Paper: the execution of Fig. 1 under (4, 2) traverses a transient
prefix into a single cycle of 7 states (Property 1); the first states
are (1,0,0,0,0), (1,0,0,2,0), (0,2,0,4,0).
"""

from repro.engine.executor import Executor
from repro.engine.state import SDFState


def explore(fig1):
    return Executor(fig1, {"alpha": 4, "beta": 2}, "c").explore_full_state_space()


def test_fig3_full_state_space(benchmark, fig1):
    states, cycle_start = benchmark(explore, fig1)

    assert states[0] == SDFState((1, 0, 0), (0, 0))
    assert states[1] == SDFState((1, 0, 0), (2, 0))
    assert states[2] == SDFState((0, 2, 0), (4, 0))
    assert len(states) - cycle_start == 7  # exactly one 7-state cycle
    assert len(set(states)) == len(states)

    print()
    print("Fig. 3 — timed state space (clocks a,b,c | tokens alpha,beta):")
    for index, state in enumerate(states):
        marker = " <- cycle start" if index == cycle_start else ""
        print(f"  {index:2d}: {state}{marker}")
