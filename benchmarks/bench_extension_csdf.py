"""X5 extension: CSDF exploration vs the SDF pipeline.

The paper's conclusions propose generalising to richer dataflow
models; this benchmark runs the CSDF generalisation and checks it
against the SDF explorer on lifted graphs (identical fronts) and on a
genuinely cyclo-static decimator.
"""

from fractions import Fraction

from repro.buffers.explorer import explore_design_space
from repro.csdf.explorer import explore_csdf_design_space
from repro.csdf.graph import CSDFGraph, from_sdf


def decimator() -> CSDFGraph:
    graph = CSDFGraph("decimator")
    graph.add_actor("src", (1,))
    graph.add_actor("biquad", (2,))
    graph.add_actor("decim", (2, 1))
    graph.add_actor("snk", (1,))
    graph.add_channel("src", "biquad", (1,), (1,), name="raw")
    graph.add_channel("biquad", "decim", (1,), (1, 1), name="filtered")
    graph.add_channel("decim", "snk", (1, 0), (1,), name="decimated")
    return graph


def test_csdf_decimator_exploration(benchmark):
    graph = decimator()
    result = benchmark(lambda: explore_csdf_design_space(graph, "snk"))
    assert result.max_throughput == Fraction(1, 4)
    assert len(result.front) >= 2
    print()
    print("CSDF decimator Pareto space:")
    for point in result.front:
        print(f"  {point}")


def test_lifted_sdf_front_identical(benchmark, fig1):
    lifted = from_sdf(fig1)

    def both():
        return (
            explore_design_space(fig1, "c").front,
            explore_csdf_design_space(lifted, "c").front,
        )

    sdf_front, csdf_front = benchmark(both)
    assert [(p.size, p.throughput) for p in sdf_front] == [
        (p.size, p.throughput) for p in csdf_front
    ]


def test_csdf_engine_overhead_on_sdf_graph(benchmark, fig1):
    """The phase-generalised engine on a single-phase graph."""
    from repro.csdf.executor import CSDFExecutor

    lifted = from_sdf(fig1)
    result = benchmark(lambda: CSDFExecutor(lifted, {"alpha": 4, "beta": 2}, "c").run())
    assert result.throughput == Fraction(1, 7)
