"""E-Q: the paper's quantisation experiment on the H.263 decoder.

Sec. 11: the H.263 design space contains very many Pareto points with
nearly identical throughputs; "by quantizing the throughputs that are
searched ..., the number of Pareto points can be limited", which
"drastically improves the execution time".

Here: a full exact exploration vs a quantised one on the scaled H.263
model; the quantised front must be much smaller while still reaching
the maximal throughput, and the quantised divide-and-conquer search
must evaluate fewer distributions than the exact one.
"""

from fractions import Fraction

from repro.buffers.explorer import explore_design_space
from repro.buffers.quantize import thin_front


def test_h263_exact_exploration(benchmark, h263_graph):
    result = benchmark.pedantic(
        lambda: explore_design_space(h263_graph), rounds=1, iterations=1
    )
    # The quantisation motivation: a flood of near-identical points.
    assert len(result.front) >= 20

    print()
    print(f"exact H.263 front: {len(result.front)} Pareto points,"
          f" {result.stats.evaluations} evaluations")


def test_h263_quantized_front_is_small(benchmark, h263_graph, h263_space):
    quantum = h263_space.max_throughput / 8

    def quantized():
        return explore_design_space(h263_graph, quantum=quantum)

    result = benchmark.pedantic(quantized, rounds=1, iterations=1)

    assert len(result.front) < len(h263_space.front) / 2
    assert result.front.max_throughput_point.throughput == h263_space.max_throughput

    print()
    print(f"quantised front (quantum {quantum}): {len(result.front)} points"
          f" vs {len(h263_space.front)} exact")


def test_quantized_thinning_preserves_levels(h263_space, benchmark):
    quantum = h263_space.max_throughput / 8

    thinned = benchmark(lambda: thin_front(h263_space.front, quantum))

    # Every reached quantum level keeps its cheapest representative.
    assert thinned.sizes() == sorted(thinned.sizes())
    assert len(thinned) <= 9
    for point in thinned:
        assert point in list(h263_space.front)
