"""E-F4: regenerate Fig. 4 — the reduced state space observing actor c.

Paper: only states at completions of c are kept, extended with the
distance dimension d; the first is reached 9 time instances after the
start, then a self-cycle with d = 7 whose throughput is 1/7.
"""

from fractions import Fraction

from repro.engine.executor import Executor


def run_reduced(fig1):
    return Executor(fig1, {"alpha": 4, "beta": 2}, "c").run()


def test_fig4_reduced_state_space(benchmark, fig1):
    result = benchmark(run_reduced, fig1)

    assert result.first_firing_time == 9
    assert [record.distance for record in result.reduced_states] == [9, 7, 7]
    assert result.states_stored == 2  # the reduced space has 2 states
    assert result.throughput == Fraction(1, 7)

    print()
    print("Fig. 4 — reduced state space (state tuple, d):")
    for record in result.reduced_states:
        print(f"  {record}")
    print(f"  throughput of c = {result.firings_in_cycle}/{result.cycle_duration}"
          f" = {result.throughput}")
