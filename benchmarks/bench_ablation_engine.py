"""A-2 ablation: tick-driven vs event-driven execution.

The paper's generated explorer advances one time step per loop
iteration (Fig. 8).  For graphs with large execution times — the
H.263 decoder's VLD takes 26018 cycles — an event-driven engine that
jumps between firing completions computes the identical behaviour
orders of magnitude faster.  Both engines are benchmarked on the same
workloads and asserted equivalent.
"""

import pytest

from repro.engine.executor import Executor

WORKLOADS = {
    # name: (graph fixture name, capacities builder)
    "example": ("fig1", lambda g: {"alpha": 4, "beta": 2}),
    "h263": ("h263_graph", lambda g: {name: c.production + c.consumption
                                      for name, c in g.channels.items()}),
}


@pytest.mark.parametrize("mode", ["event", "tick"])
def test_engine_mode_on_example(benchmark, fig1, mode):
    result = benchmark(lambda: Executor(fig1, {"alpha": 4, "beta": 2}, "c", mode=mode).run())
    assert result.throughput.denominator == 7


@pytest.mark.parametrize("mode", ["event", "tick"])
def test_engine_mode_on_h263(benchmark, h263_graph, mode):
    caps = {
        name: channel.production + channel.consumption
        for name, channel in h263_graph.channels.items()
    }
    result = benchmark.pedantic(
        lambda: Executor(h263_graph, caps, mode=mode).run(), rounds=1, iterations=1
    )
    assert result.throughput > 0


def test_modes_equivalent_on_h263(benchmark, h263_graph):
    caps = {
        name: channel.production + channel.consumption
        for name, channel in h263_graph.channels.items()
    }

    def both():
        event = Executor(h263_graph, caps, mode="event").run()
        tick = Executor(h263_graph, caps, mode="tick").run()
        return event, tick

    event, tick = benchmark.pedantic(both, rounds=1, iterations=1)
    assert event.throughput == tick.throughput
    assert event.cycle_duration == tick.cycle_duration
