"""X1 extension: shared-memory vs per-channel storage (Sec. 3 models).

The paper sizes channels separately ("a conservative bound on the
required memory space when ... implemented in a real system"); with a
single shared memory "the SDF graph may require less memory, but it
will never require more".  This benchmark quantifies the gap along the
Pareto front of the running example and the sample-rate converter.
"""

from repro.buffers.explorer import explore_design_space
from repro.buffers.shared import compare_storage_models, shared_memory_requirement


def test_shared_memory_of_running_example(benchmark, fig1):
    report = benchmark(
        lambda: shared_memory_requirement(fig1, {"alpha": 4, "beta": 2}, "c")
    )
    assert report.peak_shared_tokens <= report.distribution_size
    print()
    print(
        f"example under (4,2): distributed 6 tokens, shared peak"
        f" {report.peak_shared_tokens} (saves {report.saving})"
    )


def test_shared_memory_along_samplerate_front(benchmark, samplerate_graph):
    space = explore_design_space(samplerate_graph)

    reports = benchmark.pedantic(
        lambda: compare_storage_models(samplerate_graph, space.front),
        rounds=1,
        iterations=1,
    )
    assert all(r.peak_shared_tokens <= r.distribution_size for r in reports)
    assert any(r.saving > 0 for r in reports)
    print()
    print("sample-rate converter: distributed vs shared storage per Pareto point:")
    for point, report in zip(space.front, reports):
        print(
            f"  thr {str(point.throughput):>7s}: distributed {point.size:3d},"
            f" shared {report.peak_shared_tokens:3d} (saves {report.saving})"
        )
