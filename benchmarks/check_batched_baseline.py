"""CI gate: the batched probe plane must keep its speedup and exactness.

Re-runs the wave workload of one BML99 case study (the one the
committed ``BENCH_batched.json`` records as its best) through the
``reference`` and ``batch-numpy`` backends, asserting

* lane-for-lane identical ``EvalResult``s (exactness is the contract
  that makes the backend seam safe), and
* a batch-numpy speedup at or above the acceptance target recorded in
  the baseline (>= 5x) — measured fresh, because wall-clock figures
  from another machine are not comparable, while the speedup *ratio*
  on the same machine is.

A workload-shape drift (lane count changed) fails loudly instead of
silently gating a different benchmark.

Usage::

    PYTHONPATH=src python benchmarks/check_batched_baseline.py \
        --baseline BENCH_batched.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from bench_batched_probe import GALLERY, thin, workload_wave
from repro.engine.backends import backend_for


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="BENCH_batched.json", help="committed benchmark report"
    )
    parser.add_argument(
        "--graph",
        default=None,
        choices=sorted(GALLERY),
        help="case study to re-run (default: the baseline's best BML99 workload)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of, damps CI noise)"
    )
    arguments = parser.parse_args(argv)

    baseline = json.loads(Path(arguments.baseline).read_text(encoding="utf-8"))
    name = arguments.graph or baseline["bml99_best_workload"]
    target = float(baseline["speedup_target"])
    entry = baseline["graphs"][name]

    graph = GALLERY[name]()
    wave = workload_wave(name)
    if len(wave) != entry["lanes"]:
        print(
            f"FAIL: workload drifted — {len(wave)} lanes vs baseline"
            f" {entry['lanes']}; re-record the baseline",
            file=sys.stderr,
        )
        return 1

    reference = backend_for("reference")
    batched = backend_for("batch-numpy")
    batched.evaluate_batch(graph, wave[:2], None)  # warm the kernel cache

    best_ref, best_batch = float("inf"), float("inf")
    expected = None
    for _ in range(max(1, arguments.repeats)):
        started = time.perf_counter()
        ref_results = reference.evaluate_batch(graph, wave, None)
        best_ref = min(best_ref, time.perf_counter() - started)
        started = time.perf_counter()
        batch_results = batched.evaluate_batch(graph, wave, None)
        best_batch = min(best_batch, time.perf_counter() - started)
        expected = thin(ref_results)
        if thin(batch_results) != expected:
            print("FAIL: batch-numpy results differ from reference", file=sys.stderr)
            return 1

    speedup = best_ref / best_batch if best_batch else 0.0
    print(
        f"{name}: batch-numpy {speedup:.1f}x over reference"
        f" ({len(wave)} lanes; baseline recorded"
        f" {entry['batch_numpy_speedup']:.1f}x, target {target:.0f}x)"
    )
    if speedup < target:
        print(
            f"FAIL: {speedup:.1f}x < target {target:.0f}x — the lock-step"
            " kernel regressed (or this machine is pathologically noisy:"
            " re-run before digging)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
