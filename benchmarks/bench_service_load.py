"""Service load harness: mixed-class HTTP traffic against the
overload-safe plane (PR 8).

Drives a real in-process :class:`~repro.service.server.AnalysisServer`
over HTTP through two scenarios and records per-class end-to-end
latency percentiles (submit -> observed completion) plus success rates:

``baseline``
    Interactive point throughput queries and batch DSE jobs on the
    paper's running example, no faults.  Everything must succeed.

``overload``
    A batch flood (chaos-injected slow jobs) plus worker kills
    (chaos-injected failures) trip the *batch* circuit breaker while a
    reserved bulkhead worker keeps *interactive* point queries
    flowing.  The gate: interactive keeps succeeding, the batch
    breaker ends open, later batch submissions are shed with
    ``breaker_open``.

Wall-clock percentiles move between machines; the CI gate
(``benchmarks/check_service_baseline.py``) therefore checks the
*behavioural* facts (success rates, shed counts, breaker states) and
the internal consistency of the recorded percentiles rather than
absolute times.

Run standalone to emit ``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service_load.py \
        --output BENCH_service.json

or the quick CI variant::

    PYTHONPATH=src python benchmarks/bench_service_load.py --smoke \
        --output /tmp/BENCH_service_smoke.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ServiceError, ServiceUnavailable
from repro.gallery import fig1_example
from repro.io.jsonio import graph_to_dict
from repro.service.client import ServiceClient
from repro.service.resilience import JOB_CLASSES, Bulkhead, CircuitBreaker, RetryPolicy
from repro.service.server import AnalysisServer

#: Gates recorded into the report; check_service_baseline.py re-reads
#: them from the baseline so bench and gate cannot drift apart.
TARGETS = {
    "baseline_success_min": 1.0,
    "overload_interactive_success_min": 0.95,
    "overload_batch_breaker": "open",
}

POINT_PARAMS = {"capacities": {"alpha": 4, "beta": 2}}


@dataclass(frozen=True)
class LoadConfig:
    workers: int
    interactive_requests: int
    batch_requests: int
    flood_jobs: int
    flood_sleep_s: float
    kill_jobs: int
    shed_probes: int

    @classmethod
    def smoke(cls) -> "LoadConfig":
        return cls(
            workers=2,
            interactive_requests=6,
            batch_requests=4,
            flood_jobs=3,
            flood_sleep_s=0.4,
            kill_jobs=3,
            shed_probes=3,
        )

    @classmethod
    def full(cls) -> "LoadConfig":
        return cls(
            workers=4,
            interactive_requests=30,
            batch_requests=10,
            flood_jobs=6,
            flood_sleep_s=1.0,
            kill_jobs=4,
            shed_probes=6,
        )


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated percentile of an unsorted sample list."""
    ordered = sorted(samples)
    rank = (len(ordered) - 1) * q
    low, high = math.floor(rank), math.ceil(rank)
    if low == high:
        return ordered[low]
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def class_stats(requests: int, latencies: list[float]) -> dict:
    succeeded = len(latencies)
    stats = {
        "requests": requests,
        "succeeded": succeeded,
        "success_rate": round(succeeded / requests, 4) if requests else 1.0,
    }
    for label, q in (("p50_s", 0.50), ("p95_s", 0.95), ("p99_s", 0.99)):
        stats[label] = round(percentile(latencies, q), 6) if latencies else None
    return stats


def make_breakers(**overrides) -> dict[str, CircuitBreaker]:
    settings = dict(window=16, min_calls=3, failure_threshold=0.4, cooldown_s=30.0)
    settings.update(overrides)
    return {name: CircuitBreaker(name, **settings) for name in JOB_CLASSES}


def interactive_round_trip(client: ServiceClient, fingerprint: str) -> float:
    """One point throughput query, returning its end-to-end latency."""
    started = time.perf_counter()
    job = client.submit_job(
        fingerprint, kind="throughput", observe="c", params=POINT_PARAMS
    )
    result = client.result(job["id"], timeout=30.0)
    if result["throughput"] != "1/7":
        raise ServiceError(f"fig1 point query answered {result['throughput']!r}")
    return time.perf_counter() - started


def run_baseline(config: LoadConfig) -> dict:
    """Mixed traffic, no faults: both classes complete."""
    bulkhead = Bulkhead(config.workers, reserved={"interactive": 1})
    with AnalysisServer(
        workers=config.workers, bulkhead=bulkhead, breakers=make_breakers()
    ) as server:
        client = ServiceClient(server.url, retry=RetryPolicy(attempts=3, base_s=0.05))
        fingerprint = client.submit_graph(graph_to_dict(fig1_example()))

        started = time.perf_counter()
        batch_submitted = [
            (time.perf_counter(), client.submit_job(fingerprint, kind="dse", observe="c"))
            for _ in range(config.batch_requests)
        ]
        interactive_latencies = [
            interactive_round_trip(client, fingerprint)
            for _ in range(config.interactive_requests)
        ]
        batch_latencies = []
        for submitted_at, job in batch_submitted:
            final = client.wait(job["id"], timeout=60.0)
            if final["state"] in ("done", "partial"):
                batch_latencies.append(time.perf_counter() - submitted_at)
        duration = time.perf_counter() - started

        return {
            "duration_s": round(duration, 3),
            "classes": {
                "interactive": class_stats(
                    config.interactive_requests, interactive_latencies
                ),
                "batch": class_stats(config.batch_requests, batch_latencies),
            },
        }


def run_overload(config: LoadConfig) -> dict:
    """Batch flood + chaos kills; interactive must keep flowing."""
    bulkhead = Bulkhead(config.workers, reserved={"interactive": 1})
    with AnalysisServer(
        workers=config.workers,
        bulkhead=bulkhead,
        breakers=make_breakers(),
        allow_chaos=True,
    ) as server:
        client = ServiceClient(server.url, retry=RetryPolicy(attempts=3, base_s=0.05))
        fingerprint = client.submit_graph(graph_to_dict(fig1_example()))

        started = time.perf_counter()
        # The flood occupies every batch-capable worker; the kills
        # queue behind it and fail, tripping the batch breaker.
        flood = [
            client.submit_job(
                fingerprint,
                kind="dse",
                observe="c",
                params={"chaos": f"sleep:{config.flood_sleep_s}"},
            )
            for _ in range(config.flood_jobs)
        ]
        kills = [
            client.submit_job(
                fingerprint, kind="dse", observe="c", params={"chaos": "fail"}
            )
            for _ in range(config.kill_jobs)
        ]

        interactive_latencies = []
        interactive_errors = 0
        for _ in range(config.interactive_requests):
            try:
                interactive_latencies.append(
                    interactive_round_trip(client, fingerprint)
                )
            except ServiceError:
                interactive_errors += 1

        for job in kills:
            final = client.wait(job["id"], timeout=60.0)
            if final["state"] != "failed":
                raise ServiceError(f"chaos kill ended {final['state']!r}, not failed")

        # With the batch breaker open, fresh batch submissions shed
        # immediately; interactive submissions keep flowing.
        shed_breaker_open = 0
        blunt = ServiceClient(server.url, retry=RetryPolicy.none())
        for _ in range(config.shed_probes):
            try:
                blunt.submit_job(
                    fingerprint, kind="dse", observe="c", idempotency_key=""
                )
            except ServiceUnavailable as rejected:
                if rejected.code == "breaker_open":
                    shed_breaker_open += 1
        duration = time.perf_counter() - started

        health = client.healthz()
        breakers = {entry["name"]: entry["state"] for entry in health["breakers"]}

        for job in flood:
            if client.job(job["id"])["state"] in ("queued", "running"):
                client.cancel(job["id"])

        requests = config.interactive_requests
        return {
            "duration_s": round(duration, 3),
            "classes": {
                "interactive": class_stats(requests, interactive_latencies),
                "batch": class_stats(
                    config.flood_jobs + config.kill_jobs + config.shed_probes, []
                ),
            },
            "breakers": breakers,
            "shed": {"breaker_open": shed_breaker_open},
            "interactive_errors": interactive_errors,
        }


def run(smoke: bool) -> dict:
    config = LoadConfig.smoke() if smoke else LoadConfig.full()
    report = {
        "schema": "repro/service-load/v1",
        "smoke": smoke,
        "config": {
            "workers": config.workers,
            "interactive_requests": config.interactive_requests,
            "batch_requests": config.batch_requests,
            "flood_jobs": config.flood_jobs,
            "kill_jobs": config.kill_jobs,
            "shed_probes": config.shed_probes,
        },
        "targets": dict(TARGETS),
        "scenarios": {},
    }
    for name, scenario in (("baseline", run_baseline), ("overload", run_overload)):
        print(f"running {name} scenario ...", flush=True)
        report["scenarios"][name] = scenario(config)
    # The overload batch column records only shed/killed traffic, so
    # its success gate does not apply; make that explicit.
    report["scenarios"]["overload"]["classes"]["batch"]["gated"] = False
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small, CI-sized traffic volumes"
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", help="where to write the report"
    )
    arguments = parser.parse_args(argv)

    report = run(smoke=arguments.smoke)
    Path(arguments.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    for name, scenario in report["scenarios"].items():
        interactive = scenario["classes"]["interactive"]
        print(
            f"{name}: interactive {interactive['succeeded']}/{interactive['requests']}"
            f" ok, p50={interactive['p50_s']}s p95={interactive['p95_s']}s"
            f" p99={interactive['p99_s']}s"
        )
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
