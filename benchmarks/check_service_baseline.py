"""CI gate: the overload-safe service plane must keep its promises.

Validates a ``bench_service_load.py`` report (``BENCH_service.json``
or a fresh ``--smoke`` run) against the behavioural gates the report
itself records under ``targets``:

* every scenario carries per-class percentile stats with sane ordering
  (``p50 <= p95 <= p99``),
* the no-fault baseline scenario succeeds for both classes,
* under overload the interactive class stays above its success floor,
  the batch breaker ends ``open`` while interactive stays ``closed``,
  and at least one batch submission was shed with ``breaker_open``.

Absolute latencies are machine-specific and deliberately not gated;
only internal consistency and success behaviour are.

Usage::

    PYTHONPATH=src python benchmarks/check_service_baseline.py \
        --baseline BENCH_service.json
    PYTHONPATH=src python benchmarks/check_service_baseline.py \
        --baseline /tmp/BENCH_service_smoke.json --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "repro/service-load/v1"
PERCENTILES = ("p50_s", "p95_s", "p99_s")


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def check_class(scenario: str, name: str, stats: dict) -> str | None:
    for field in ("requests", "succeeded", "success_rate", *PERCENTILES):
        if field not in stats:
            return f"{scenario}/{name}: missing field {field!r}"
    if stats["succeeded"] > stats["requests"]:
        return f"{scenario}/{name}: more successes than requests"
    recorded = [stats[p] for p in PERCENTILES if stats[p] is not None]
    if any(value < 0 for value in recorded):
        return f"{scenario}/{name}: negative latency percentile"
    if recorded != sorted(recorded):
        return f"{scenario}/{name}: percentiles not monotone: {recorded}"
    if stats["succeeded"] and len(recorded) != len(PERCENTILES):
        return f"{scenario}/{name}: successes recorded but percentiles missing"
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="BENCH_service.json", help="benchmark report to validate"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="expect a --smoke report (fresh CI run) instead of the committed full run",
    )
    arguments = parser.parse_args(argv)

    path = Path(arguments.baseline)
    if not path.exists():
        return fail(f"{path} does not exist; run bench_service_load.py first")
    report = json.loads(path.read_text(encoding="utf-8"))

    if report.get("schema") != SCHEMA:
        return fail(f"schema {report.get('schema')!r} != {SCHEMA!r}")
    if bool(report.get("smoke")) != arguments.smoke:
        expected = "--smoke" if arguments.smoke else "a full run"
        return fail(f"report smoke={report.get('smoke')!r} but the gate expects {expected}")

    targets = report.get("targets") or {}
    for key in ("baseline_success_min", "overload_interactive_success_min"):
        if key not in targets:
            return fail(f"targets missing {key!r}")

    scenarios = report.get("scenarios") or {}
    for scenario in ("baseline", "overload"):
        if scenario not in scenarios:
            return fail(f"missing scenario {scenario!r}")
        classes = scenarios[scenario].get("classes") or {}
        for name in ("interactive", "batch"):
            if name not in classes:
                return fail(f"{scenario}: missing class {name!r}")
            problem = check_class(scenario, name, classes[name])
            if problem:
                return fail(problem)

    floor = float(targets["baseline_success_min"])
    for name, stats in scenarios["baseline"]["classes"].items():
        if stats["success_rate"] < floor:
            return fail(
                f"baseline/{name}: success rate {stats['success_rate']} < {floor}"
            )

    overload = scenarios["overload"]
    interactive = overload["classes"]["interactive"]
    floor = float(targets["overload_interactive_success_min"])
    if interactive["success_rate"] < floor:
        return fail(
            "overload/interactive: success rate"
            f" {interactive['success_rate']} < {floor} — the bulkhead is not"
            " protecting the interactive lane"
        )
    breakers = overload.get("breakers") or {}
    if breakers.get("batch") != targets.get("overload_batch_breaker", "open"):
        return fail(
            f"overload: batch breaker ended {breakers.get('batch')!r}, expected open"
        )
    if breakers.get("interactive") != "closed":
        return fail(
            "overload: interactive breaker ended"
            f" {breakers.get('interactive')!r} — batch faults leaked across classes"
        )
    shed = (overload.get("shed") or {}).get("breaker_open", 0)
    if shed < 1:
        return fail("overload: no batch submission was shed with breaker_open")

    print(
        f"OK: baseline {scenarios['baseline']['classes']['interactive']['success_rate']:.0%}"
        f" interactive / {scenarios['baseline']['classes']['batch']['success_rate']:.0%}"
        f" batch; overload interactive {interactive['success_rate']:.0%}"
        f" (p99={interactive['p99_s']}s), batch breaker open, {shed} shed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
