"""A-3 ablation: maximal throughput via MCM/HSDF vs state space.

The paper obtains the maximal achievable throughput through the
classical maximum-cycle-mean route [GG93]; the library also computes
it by executing the verified upper-bound distribution.  Both are
exact and must agree; their costs scale differently with the
repetition vector.
"""

import pytest

from repro.analysis.throughput import max_throughput

GRAPHS = ["fig1", "fig6", "modem_graph", "satellite_graph"]


@pytest.mark.parametrize("fixture_name", GRAPHS)
@pytest.mark.parametrize("method", ["mcm", "statespace"])
def test_max_throughput_method(benchmark, request, fixture_name, method):
    graph = request.getfixturevalue(fixture_name)
    value = benchmark.pedantic(
        lambda: max_throughput(graph, method=method), rounds=1, iterations=1
    )
    assert value > 0


def test_methods_agree_everywhere(benchmark, request):
    def check():
        results = {}
        for fixture_name in GRAPHS:
            graph = request.getfixturevalue(fixture_name)
            mcm = max_throughput(graph, method="mcm")
            statespace = max_throughput(graph, method="statespace")
            assert mcm == statespace, fixture_name
            results[fixture_name] = mcm
        return results

    results = benchmark.pedantic(check, rounds=1, iterations=1)
    print()
    print("maximal throughput per graph (MCM == state space):")
    for name, value in results.items():
        print(f"  {name:16s} {value}")
