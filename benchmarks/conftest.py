"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Runs are performed through
pytest-benchmark::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the regenerated artefacts (schedule tables,
ASCII Pareto charts, the Table-2 summary) on stdout.
"""

from __future__ import annotations

import pytest

from repro.buffers.explorer import explore_design_space
from repro.gallery import (
    fig1_example,
    fig6_example,
    h263_decoder,
    modem,
    sample_rate_converter,
    satellite_receiver,
)

#: Scaled H.263 burst used by default in the harness (full rate 2376 is
#: reachable by editing this constant; see EXPERIMENTS.md).
H263_BLOCKS = 33


@pytest.fixture(scope="session")
def fig1():
    return fig1_example()


@pytest.fixture(scope="session")
def fig6():
    return fig6_example()


@pytest.fixture(scope="session")
def modem_graph():
    return modem()


@pytest.fixture(scope="session")
def samplerate_graph():
    return sample_rate_converter()


@pytest.fixture(scope="session")
def satellite_graph():
    return satellite_receiver()


@pytest.fixture(scope="session")
def h263_graph():
    return h263_decoder(blocks=H263_BLOCKS)


@pytest.fixture(scope="session")
def fig1_space(fig1):
    return explore_design_space(fig1, "c")


@pytest.fixture(scope="session")
def modem_space(modem_graph):
    return explore_design_space(modem_graph)


@pytest.fixture(scope="session")
def h263_space(h263_graph):
    return explore_design_space(h263_graph)
